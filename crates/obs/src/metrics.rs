//! Metrics: monotone counters and fixed-bucket histograms.
//!
//! Unlike trace events — which grow with the run — metrics are constant
//! size: a fixed set of atomic counters and histograms keyed by enum, so
//! per-instance hot paths can record into them without allocation or
//! locks. A [`MetricsSnapshot`] freezes the registry for reports (the
//! serve bench folds one into `BENCH_serve.json`).
//!
//! The workspace is dependency-free, so there is no `serde`; snapshots
//! serialize through the hand-rolled [`MetricsSnapshot::to_json`] and
//! `Display` instead.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone event counters, one per observable occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Counter {
    /// Simulated instances.
    Instances,
    /// Instances that missed their deadline.
    DeadlineMisses,
    /// Solver invocations that actually ran the pipeline.
    SolverCalls,
    /// Solves answered by a memo/pool/schedule cache (any layer).
    CacheHits,
    /// Cache lookups that fell through to the solver.
    CacheMisses,
    /// Drift events (windowed estimate crossed its threshold).
    DriftEvents,
    /// Adopted re-schedules.
    Adoptions,
    /// Requests folded into another stream's solve job.
    CoalescedRequests,
    /// Injected fault events.
    FaultsInjected,
    /// Degradation-ladder transitions.
    LadderTransitions,
    /// Reschedule requests shed by admission control.
    ShedRequests,
    /// Circuit-breaker openings (streams entering quarantine).
    QuarantineEvents,
    /// Solves aborted by the work-budget watchdog.
    BudgetExceededSolves,
    /// Solves answered by the workspace's quantised near-miss memo.
    NearMissHits,
    /// Instances whose arrival-to-completion latency exceeded the SLO.
    SloMisses,
    /// Campaign cells executed to completion.
    CellsCompleted,
    /// Campaign cells skipped because the checkpoint already held them.
    CellsResumed,
    /// Campaign artifact compiles (one per distinct workload × platform
    /// pair actually touched).
    ArtifactCompiles,
    /// Campaign cells served an already-compiled artifact.
    ArtifactHits,
    /// Scheduler-portfolio races run on drift events.
    PortfolioRaces,
}

/// All counters, in snapshot/export order.
pub const COUNTERS: [Counter; 20] = [
    Counter::Instances,
    Counter::DeadlineMisses,
    Counter::SolverCalls,
    Counter::CacheHits,
    Counter::CacheMisses,
    Counter::DriftEvents,
    Counter::Adoptions,
    Counter::CoalescedRequests,
    Counter::FaultsInjected,
    Counter::LadderTransitions,
    Counter::ShedRequests,
    Counter::QuarantineEvents,
    Counter::BudgetExceededSolves,
    Counter::NearMissHits,
    Counter::SloMisses,
    Counter::CellsCompleted,
    Counter::CellsResumed,
    Counter::ArtifactCompiles,
    Counter::ArtifactHits,
    Counter::PortfolioRaces,
];

impl Counter {
    fn index(self) -> usize {
        match self {
            Counter::Instances => 0,
            Counter::DeadlineMisses => 1,
            Counter::SolverCalls => 2,
            Counter::CacheHits => 3,
            Counter::CacheMisses => 4,
            Counter::DriftEvents => 5,
            Counter::Adoptions => 6,
            Counter::CoalescedRequests => 7,
            Counter::FaultsInjected => 8,
            Counter::LadderTransitions => 9,
            Counter::ShedRequests => 10,
            Counter::QuarantineEvents => 11,
            Counter::BudgetExceededSolves => 12,
            Counter::NearMissHits => 13,
            Counter::SloMisses => 14,
            Counter::CellsCompleted => 15,
            Counter::CellsResumed => 16,
            Counter::ArtifactCompiles => 17,
            Counter::ArtifactHits => 18,
            Counter::PortfolioRaces => 19,
        }
    }

    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Instances => "instances",
            Counter::DeadlineMisses => "deadline_misses",
            Counter::SolverCalls => "solver_calls",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::DriftEvents => "drift_events",
            Counter::Adoptions => "adoptions",
            Counter::CoalescedRequests => "coalesced_requests",
            Counter::FaultsInjected => "faults_injected",
            Counter::LadderTransitions => "ladder_transitions",
            Counter::ShedRequests => "shed_requests",
            Counter::QuarantineEvents => "quarantine_events",
            Counter::BudgetExceededSolves => "budget_exceeded_solves",
            Counter::NearMissHits => "near_miss_hits",
            Counter::SloMisses => "slo_misses",
            Counter::CellsCompleted => "cells_completed",
            Counter::CellsResumed => "cells_resumed",
            Counter::ArtifactCompiles => "artifact_compiles",
            Counter::ArtifactHits => "artifact_hits",
            Counter::PortfolioRaces => "portfolio_races",
        }
    }
}

/// Fixed-bucket histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Hist {
    /// End-to-end solver latency in microseconds.
    SolveUs,
    /// Per-instance slack (deadline − makespan) as a fraction of the
    /// deadline, in percent; negative = a miss.
    SlackPct,
}

/// All histograms, in snapshot/export order.
pub const HISTS: [Hist; 2] = [Hist::SolveUs, Hist::SlackPct];

impl Hist {
    fn index(self) -> usize {
        match self {
            Hist::SolveUs => 0,
            Hist::SlackPct => 1,
        }
    }

    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SolveUs => "solve_us",
            Hist::SlackPct => "slack_pct",
        }
    }

    /// Upper bucket bounds (a final implicit `+inf` bucket catches the
    /// rest). Bounds are fixed so snapshots from different runs line up
    /// column for column.
    pub fn bounds(self) -> &'static [f64] {
        match self {
            Hist::SolveUs => &[
                10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 10_000.0, 50_000.0,
            ],
            Hist::SlackPct => &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 75.0],
        }
    }
}

/// One atomic fixed-bucket histogram.
#[derive(Debug)]
struct AtomicHistogram {
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, as `f64` bits updated by CAS (recording is
    /// rare enough that contention is negligible).
    sum_bits: AtomicU64,
}

impl AtomicHistogram {
    fn new(bounds: &[f64]) -> Self {
        AtomicHistogram {
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    fn record(&self, bounds: &[f64], value: f64) {
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// The registry: every counter and histogram, recordable concurrently.
#[derive(Debug)]
pub struct Metrics {
    counters: Vec<AtomicU64>,
    hists: Vec<AtomicHistogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            counters: (0..COUNTERS.len()).map(|_| AtomicU64::new(0)).collect(),
            hists: HISTS
                .iter()
                .map(|h| AtomicHistogram::new(h.bounds()))
                .collect(),
        }
    }
}

impl Metrics {
    /// Creates an all-zero registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to `counter`.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Records `value` into `hist`.
    pub fn observe(&self, hist: Hist, value: f64) {
        self.hists[hist.index()].record(hist.bounds(), value);
    }

    /// Freezes the registry into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: COUNTERS.iter().map(|&c| (c.name(), self.get(c))).collect(),
            hists: HISTS
                .iter()
                .map(|&h| {
                    let a = &self.hists[h.index()];
                    HistSnapshot {
                        name: h.name(),
                        bounds: h.bounds(),
                        buckets: a
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: a.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(a.sum_bits.load(Ordering::Relaxed)),
                    }
                })
                .collect(),
        }
    }
}

/// A frozen histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Export name.
    pub name: &'static str,
    /// Upper bucket bounds (the final overflow bucket is implicit).
    pub bounds: &'static [f64],
    /// Per-bucket counts, `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
}

impl HistSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A frozen registry: plain data, cheap to clone and compare.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, in [`COUNTERS`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// One frozen histogram per [`Hist`], in [`HISTS`] order.
    pub hists: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by export name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Serializes the snapshot as a JSON object (hand-rolled; the
    /// workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"bounds\":[{}],\"buckets\":[{}],\"count\":{},\"sum\":{}}}",
                h.name,
                h.bounds
                    .iter()
                    .map(|b| format!("{b}"))
                    .collect::<Vec<_>>()
                    .join(","),
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                h.count,
                crate::json::fmt_f64(h.sum),
            ));
        }
        out.push_str("}}");
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counters:")?;
        for (name, value) in &self.counters {
            writeln!(f, "  {name:<20} {value}")?;
        }
        for h in &self.hists {
            writeln!(
                f,
                "histogram {} (count {}, mean {:.2}):",
                h.name,
                h.count,
                h.mean()
            )?;
            for (i, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let label = if i < h.bounds.len() {
                    format!("<= {}", h.bounds[i])
                } else {
                    "> last".to_string()
                };
                writeln!(f, "  {label:<12} {count}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add(Counter::Instances, 3);
        m.add(Counter::Instances, 2);
        m.add(Counter::CacheHits, 1);
        assert_eq!(m.get(Counter::Instances), 5);
        assert_eq!(m.get(Counter::CacheHits), 1);
        assert_eq!(m.get(Counter::SolverCalls), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("instances"), 5);
        assert_eq!(snap.counter("no_such"), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let m = Metrics::new();
        m.observe(Hist::SolveUs, 5.0); // <= 10
        m.observe(Hist::SolveUs, 10.0); // <= 10 (inclusive)
        m.observe(Hist::SolveUs, 99.0); // <= 100
        m.observe(Hist::SolveUs, 1e9); // overflow
        let snap = m.snapshot();
        let h = &snap.hists[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(*h.buckets.last().unwrap(), 1);
        assert!((h.sum - (5.0 + 10.0 + 99.0 + 1e9)).abs() < 1e-6);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let m = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for i in 0..1000 {
                        m.add(Counter::Instances, 1);
                        m.observe(Hist::SlackPct, (i % 100) as f64);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counter("instances"), 4000);
        assert_eq!(snap.hists[1].count, 4000);
        let bucket_total: u64 = snap.hists[1].buckets.iter().sum();
        assert_eq!(bucket_total, 4000);
    }

    #[test]
    fn snapshot_json_is_valid() {
        let m = Metrics::new();
        m.add(Counter::DriftEvents, 7);
        m.observe(Hist::SolveUs, 42.0);
        let json = m.snapshot().to_json();
        let parsed = crate::json::parse(&json).expect("snapshot JSON parses");
        let counters = parsed.get("counters").expect("counters object");
        assert_eq!(
            counters.get("drift_events").and_then(|v| v.as_f64()),
            Some(7.0)
        );
        let display = m.snapshot().to_string();
        assert!(display.contains("drift_events"));
    }
}
