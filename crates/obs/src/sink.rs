//! Event sinks: where recorded events go.
//!
//! The recorder ([`Obs`](crate::Obs)) is generic over a [`Sink`] trait
//! object. Two implementations ship with the crate:
//!
//! * [`NullSink`] — accepts and discards everything. Useful for measuring
//!   the recording overhead itself (an enabled recorder whose events cost
//!   only their construction).
//! * [`BufferedSink`] — keeps events in memory, lock-striped by track so
//!   concurrent workers recording to *different* tracks almost never
//!   contend, and merged deterministically at drain time.
//!
//! # Determinism of the merge
//!
//! [`BufferedSink::drain_sorted`] concatenates the stripes and stably
//! sorts by `(track, ts_ns)`. A track is only ever recorded by one thread
//! at a time (workers own disjoint tracks; phase hand-offs are separated
//! by barriers in the engines that share tracks), so within a track both
//! buffer order and timestamps are well-defined and the sorted output is a
//! pure function of what each track recorded — never of cross-thread
//! interleaving. Two runs of the same workload produce the same event
//! *sequence* per track; only the timestamp values differ.

use crate::event::Event;
use std::sync::Mutex;

/// Receives recorded events. Implementations must be cheap and
/// thread-safe: `record` is called from simulation hot paths (only while
/// telemetry is enabled).
pub trait Sink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);
    /// Events accepted so far (0 for sinks that do not retain anything).
    fn len(&self) -> usize;
    /// Whether the sink holds no retained events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sink that drops every event.
///
/// Distinct from running with telemetry *disabled*: the recorder still
/// timestamps and constructs events, so the equivalence suite can assert
/// that the act of recording never perturbs results.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: Event) {}
    fn len(&self) -> usize {
        0
    }
}

/// An in-memory sink, lock-striped by track.
///
/// Stripe `track % stripes` owns the events of `track`, so a track's
/// events land in one stripe in record order and workers on different
/// tracks take different locks.
#[derive(Debug)]
pub struct BufferedSink {
    stripes: Vec<Mutex<Vec<Event>>>,
}

impl BufferedSink {
    /// Creates a sink with `stripes.max(1)` stripes. Size the stripe count
    /// at or above the number of concurrently recording tracks.
    pub fn new(stripes: usize) -> Self {
        BufferedSink {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Drains every stripe and returns all events, stably sorted by
    /// `(track, ts_ns)` — the deterministic ordered merge (see the module
    /// docs).
    pub fn drain_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = Vec::new();
        for stripe in &self.stripes {
            all.append(&mut stripe.lock().expect("obs stripe lock"));
        }
        all.sort_by_key(|a| (a.track, a.ts_ns));
        all
    }

    /// Like [`BufferedSink::drain_sorted`] without draining: clones the
    /// retained events.
    pub fn snapshot_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = Vec::new();
        for stripe in &self.stripes {
            all.extend(stripe.lock().expect("obs stripe lock").iter().copied());
        }
        all.sort_by_key(|a| (a.track, a.ts_ns));
        all
    }
}

impl Sink for BufferedSink {
    fn record(&self, event: Event) {
        let stripe = event.track as usize % self.stripes.len();
        self.stripes[stripe]
            .lock()
            .expect("obs stripe lock")
            .push(event);
    }

    fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("obs stripe lock").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Stage};

    fn ev(track: u32, ts_ns: u64) -> Event {
        Event {
            track,
            stage: Stage::Tick,
            kind: EventKind::Instant,
            ts_ns,
            dur_ns: 0,
            arg: 0,
        }
    }

    #[test]
    fn null_sink_retains_nothing() {
        let s = NullSink;
        s.record(ev(0, 1));
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn buffered_sink_merges_by_track_then_time() {
        let s = BufferedSink::new(2);
        s.record(ev(1, 30));
        s.record(ev(0, 20));
        s.record(ev(1, 10));
        s.record(ev(0, 5));
        assert_eq!(s.len(), 4);
        let drained = s.drain_sorted();
        let keys: Vec<(u32, u64)> = drained.iter().map(|e| (e.track, e.ts_ns)).collect();
        assert_eq!(keys, vec![(0, 5), (0, 20), (1, 10), (1, 30)]);
        assert!(s.is_empty(), "drain empties the stripes");
    }

    #[test]
    fn snapshot_does_not_drain() {
        let s = BufferedSink::new(1);
        s.record(ev(3, 7));
        assert_eq!(s.snapshot_sorted().len(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn concurrent_tracks_round_trip() {
        let s = BufferedSink::new(4);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        s.record(ev(t, i));
                    }
                });
            }
        });
        let drained = s.drain_sorted();
        assert_eq!(drained.len(), 400);
        for pair in drained.windows(2) {
            if pair[0].track == pair[1].track {
                assert!(pair[0].ts_ns <= pair[1].ts_ns, "per-track order");
            } else {
                assert!(pair[0].track < pair[1].track, "track-major order");
            }
        }
    }
}
