//! JSON-lines export: one event object per line.
//!
//! The machine-friendly sibling of the Chrome exporter — trivially
//! greppable, streamable, and parseable line by line with any JSON
//! reader (including [`crate::json`]).

use crate::event::{Event, EventKind};

/// Renders one event as a single-line JSON object.
pub fn render_line(e: &Event) -> String {
    format!(
        "{{\"track\":{},\"stage\":\"{}\",\"cat\":\"{}\",\"kind\":\"{}\",\
         \"ts_ns\":{},\"dur_ns\":{},\"arg\":{}}}",
        e.track,
        e.stage.name(),
        e.stage.category(),
        match e.kind {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        },
        e.ts_ns,
        e.dur_ns,
        e.arg,
    )
}

/// Renders `events` as a JSON-lines document (trailing newline included
/// when non-empty).
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&render_line(e));
        out.push('\n');
    }
    out
}

/// Renders and writes a `.jsonl` file in one step.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_file(path: &std::path::Path, events: &[Event]) -> std::io::Result<()> {
    std::fs::write(path, render(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use crate::json::{parse, Value};

    #[test]
    fn every_line_parses_independently() {
        let events = vec![
            Event {
                track: 0,
                stage: Stage::CacheHit,
                kind: EventKind::Instant,
                ts_ns: 12,
                dur_ns: 0,
                arg: -1,
            },
            Event {
                track: 9,
                stage: Stage::Stretch,
                kind: EventKind::Span,
                ts_ns: 40,
                dur_ns: 8,
                arg: 2,
            },
        ];
        let doc = render(&events);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse(lines[0]).unwrap();
        assert_eq!(
            first.get("stage").and_then(Value::as_str),
            Some("cache_hit")
        );
        assert_eq!(first.get("arg").and_then(Value::as_f64), Some(-1.0));
        let second = parse(lines[1]).unwrap();
        assert_eq!(second.get("kind").and_then(Value::as_str), Some("span"));
        assert_eq!(second.get("dur_ns").and_then(Value::as_f64), Some(8.0));
    }

    #[test]
    fn empty_input_renders_empty_document() {
        assert!(render(&[]).is_empty());
    }
}
