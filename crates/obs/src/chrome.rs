//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! Renders a slice of [`Event`]s as the Trace Event Format's JSON object
//! form: `{"traceEvents": [...]}` with complete (`"ph": "X"`) events for
//! spans and instant (`"ph": "i"`) events for point occurrences, one
//! `tid` per telemetry track. Open the file at <https://ui.perfetto.dev>
//! or `chrome://tracing` to see the solver/cache/serve stages on a
//! timeline.
//!
//! Events are emitted in `(track, ts)` order, so per-track timestamps are
//! monotone in the output — `tests/obs_equivalence.rs` pins that, plus
//! that the emitted document parses with [`crate::json`].

use crate::event::{Event, EventKind};
use crate::json::quote;
use std::collections::BTreeMap;

/// The `pid` every event is exported under (the stack is one process).
pub const PID: u32 = 1;

/// Renders `events` as a Chrome-trace JSON document with default track
/// names (`"track <id>"`).
pub fn render(events: &[Event]) -> String {
    render_named(events, &BTreeMap::new())
}

/// Like [`render`], with explicit display names for (some) tracks.
pub fn render_named(events: &[Event], track_names: &BTreeMap<u32, String>) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|a| (a.track, a.ts_ns));

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, entry: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&entry);
    };

    // Thread-name metadata first: viewers label the rows with them.
    let mut tracks: Vec<u32> = sorted.iter().map(|e| e.track).collect();
    tracks.dedup();
    for &t in &tracks {
        let name = track_names
            .get(&t)
            .cloned()
            .unwrap_or_else(|| format!("track {t}"));
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{t},\
                 \"args\":{{\"name\":{}}}}}",
                quote(&name)
            ),
        );
    }

    for e in sorted {
        push(&mut out, render_event(e));
    }
    out.push_str("\n]}\n");
    out
}

/// One trace-event JSON object. Timestamps are microseconds (the format's
/// unit), kept fractional so nanosecond spans survive.
fn render_event(e: &Event) -> String {
    let ts_us = e.ts_ns as f64 / 1000.0;
    let common = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{PID},\"tid\":{},\"ts\":{},\
         \"args\":{{\"arg\":{}}}",
        e.stage.name(),
        e.stage.category(),
        e.track,
        crate::json::fmt_f64(ts_us),
        e.arg,
    );
    match e.kind {
        EventKind::Span => format!(
            "{{{common},\"ph\":\"X\",\"dur\":{}}}",
            crate::json::fmt_f64(e.dur_ns as f64 / 1000.0)
        ),
        EventKind::Instant => format!("{{{common},\"ph\":\"i\",\"s\":\"t\"}}"),
    }
}

/// Renders and writes a trace file in one step.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_file(
    path: &std::path::Path,
    events: &[Event],
    track_names: &BTreeMap<u32, String>,
) -> std::io::Result<()> {
    std::fs::write(path, render_named(events, track_names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use crate::json::{parse, Value};

    fn ev(track: u32, ts_ns: u64, kind: EventKind) -> Event {
        Event {
            track,
            stage: Stage::Solve,
            kind,
            ts_ns,
            dur_ns: if kind == EventKind::Span { 500 } else { 0 },
            arg: 3,
        }
    }

    #[test]
    fn renders_valid_json_with_monotone_tracks() {
        let events = vec![
            ev(1, 900, EventKind::Instant),
            ev(0, 2_000, EventKind::Span),
            ev(0, 1_000, EventKind::Span),
            ev(1, 100, EventKind::Span),
        ];
        let doc = render(&events);
        let parsed = parse(&doc).expect("chrome trace parses");
        let items = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 2 tracks → 2 metadata events + 4 real events.
        assert_eq!(items.len(), 6);
        let mut last: std::collections::BTreeMap<u64, f64> = Default::default();
        for item in items {
            let ph = item.get("ph").and_then(Value::as_str).unwrap();
            if ph == "M" {
                continue;
            }
            let tid = item.get("tid").and_then(Value::as_f64).unwrap() as u64;
            let ts = item.get("ts").and_then(Value::as_f64).unwrap();
            if let Some(prev) = last.insert(tid, ts) {
                assert!(ts >= prev, "track {tid} timestamps must be monotone");
            }
        }
    }

    #[test]
    fn names_and_durations_survive() {
        let doc = render_named(
            &[ev(7, 0, EventKind::Span)],
            &[(7, "worker \"7\"".to_string())].into_iter().collect(),
        );
        let parsed = parse(&doc).unwrap();
        let items = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        let meta = &items[0];
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("worker \"7\"")
        );
        let span = &items[1];
        assert_eq!(span.get("name").and_then(Value::as_str), Some("solve"));
        assert_eq!(span.get("dur").and_then(Value::as_f64), Some(0.5));
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("arg"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let parsed = parse(&render(&[])).unwrap();
        assert_eq!(
            parsed
                .get("traceEvents")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );
    }
}
