//! `ctg_obs` — structured telemetry for the adaptive-dvfs stack.
//!
//! A zero-overhead-when-disabled tracing + metrics layer: the solver,
//! adaptive manager, fault plumbing and serving engine all carry an
//! [`Obs`] handle and record span/instant [`Event`]s for their hot stages
//! (DLS mapping, path enumeration, stretching, cache hits, drift
//! detection, coalesced fan-out, fault injection, ladder transitions)
//! plus counters and fixed-bucket histograms into a [`Metrics`] registry.
//!
//! * **Disabled is free.** A disabled handle ([`Obs::disabled`], the
//!   default) is a `None` — every recording call is an inlined
//!   branch-and-return; no clock is read, no event is built, nothing
//!   allocates.
//! * **Enabled never changes results.** Recording only *reads* the
//!   simulation state; timing lives in events and histograms, never in
//!   summaries. `tests/obs_equivalence.rs` pins bit-identical summaries
//!   and adopted schedules with the sink off, no-op and buffered.
//! * **Deterministic merge.** The [`BufferedSink`] is lock-striped by
//!   track and ordered-merged at drain, the same discipline as
//!   `ctg_sim::pool` — the event sequence per track is a pure function of
//!   the run.
//!
//! Exporters: [`chrome`] renders `chrome://tracing` / Perfetto JSON,
//! [`jsonl`] renders JSON-lines, and [`json`] is a minimal parser used to
//! validate both in tests and CI.
//!
//! # Example
//!
//! ```
//! use ctg_obs::{chrome, BufferedSink, Counter, Obs, Stage};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(BufferedSink::new(4));
//! let obs = Obs::with_sink(sink.clone());
//!
//! let span = obs.span(0, Stage::Solve);
//! // ... do the work being traced ...
//! obs.count(Counter::SolverCalls, 1);
//! span.end(1);
//! obs.instant(0, Stage::CacheMiss, 0);
//!
//! let events = sink.drain_sorted();
//! assert_eq!(events.len(), 2);
//! let trace = chrome::render(&events);
//! ctg_obs::json::parse(&trace).expect("exported trace is valid JSON");
//! assert_eq!(obs.metrics_snapshot().unwrap().counter("solver_calls"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
pub mod json;
pub mod jsonl;
mod metrics;
mod sink;

pub use event::{Event, EventKind, Stage};
pub use metrics::{Counter, Hist, HistSnapshot, Metrics, MetricsSnapshot, COUNTERS, HISTS};
pub use sink::{BufferedSink, NullSink, Sink};

use std::sync::Arc;
use std::time::Instant;

/// The shared state behind an enabled handle.
struct ObsInner {
    sink: Arc<dyn Sink>,
    metrics: Metrics,
    epoch: Instant,
}

impl std::fmt::Debug for ObsInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsInner")
            .field("retained_events", &self.sink.len())
            .finish()
    }
}

/// The telemetry handle threaded through the stack.
///
/// Cheap to clone (an `Option<Arc>`), cheap to store, and free when
/// disabled. Components receive one via their `set_obs`-style setters and
/// record against a caller-chosen *track* (worker id, stream id, …);
/// events from one track must be recorded by one thread at a time — the
/// merge discipline the buffered sink's determinism rests on.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The disabled handle: every recording call returns immediately.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled handle recording into `sink`, with a fresh metrics
    /// registry and the epoch set to now.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                sink,
                metrics: Metrics::new(),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn now_ns(inner: &ObsInner) -> u64 {
        inner.epoch.elapsed().as_nanos() as u64
    }

    /// Records a point event (free when disabled).
    #[inline]
    pub fn instant(&self, track: u32, stage: Stage, arg: i64) {
        let Some(inner) = &self.inner else { return };
        inner.sink.record(Event {
            track,
            stage,
            kind: EventKind::Instant,
            ts_ns: Self::now_ns(inner),
            dur_ns: 0,
            arg,
        });
    }

    /// Opens a span; the returned guard records a completed interval when
    /// [`SpanGuard::end`] is called (or on drop, with `arg` 0). Free when
    /// disabled — no clock is read.
    #[inline]
    pub fn span(&self, track: u32, stage: Stage) -> SpanGuard<'_> {
        let start_ns = match &self.inner {
            Some(inner) => Self::now_ns(inner),
            None => 0,
        };
        SpanGuard {
            obs: self,
            track,
            stage,
            start_ns,
            armed: self.inner.is_some(),
        }
    }

    /// Adds `n` to a metrics counter (free when disabled).
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(counter, n);
        }
    }

    /// Records `value` into a metrics histogram (free when disabled).
    #[inline]
    pub fn observe(&self, hist: Hist, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(hist, value);
        }
    }

    /// Freezes the metrics registry (`None` when disabled).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }
}

/// An open span: holds the start timestamp until the work completes.
///
/// Dropping the guard records the span with `arg` 0; call
/// [`SpanGuard::end`] to attach a stage-specific argument and get the
/// measured duration back (for feeding a latency histogram).
#[must_use = "a span records when ended or dropped; binding to _ ends it immediately"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    track: u32,
    stage: Stage,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Closes the span with `arg`, returning its duration in nanoseconds
    /// (0 when telemetry is disabled).
    pub fn end(mut self, arg: i64) -> u64 {
        self.finish(arg)
    }

    fn finish(&mut self, arg: i64) -> u64 {
        if !self.armed {
            return 0;
        }
        self.armed = false;
        let inner = self
            .obs
            .inner
            .as_ref()
            .expect("armed span implies enabled handle");
        let now = Obs::now_ns(inner);
        let dur_ns = now.saturating_sub(self.start_ns);
        inner.sink.record(Event {
            track: self.track,
            stage: self.stage,
            kind: EventKind::Span,
            ts_ns: self.start_ns,
            dur_ns,
            arg,
        });
        dur_ns
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.instant(0, Stage::Tick, 1);
        obs.count(Counter::Instances, 5);
        obs.observe(Hist::SolveUs, 1.0);
        assert_eq!(obs.span(0, Stage::Solve).end(1), 0);
        assert!(obs.metrics_snapshot().is_none());
    }

    #[test]
    fn spans_and_instants_reach_the_sink() {
        let sink = Arc::new(BufferedSink::new(2));
        let obs = Obs::with_sink(sink.clone());
        let span = obs.span(3, Stage::Stretch);
        obs.instant(3, Stage::CacheHit, 7);
        span.end(2);
        let events = sink.drain_sorted();
        assert_eq!(events.len(), 2);
        let span_ev = events
            .iter()
            .find(|e| e.kind == EventKind::Span)
            .expect("span recorded");
        assert_eq!(span_ev.stage, Stage::Stretch);
        assert_eq!(span_ev.arg, 2);
        let instant_ev = events
            .iter()
            .find(|e| e.kind == EventKind::Instant)
            .expect("instant recorded");
        assert_eq!(instant_ev.arg, 7);
        // The span started before the instant fired.
        assert!(span_ev.ts_ns <= instant_ev.ts_ns);
    }

    #[test]
    fn dropped_span_records_with_zero_arg() {
        let sink = Arc::new(BufferedSink::new(1));
        let obs = Obs::with_sink(sink.clone());
        {
            let _span = obs.span(0, Stage::DlsMap);
        }
        let events = sink.drain_sorted();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].arg, 0);
        assert_eq!(events[0].kind, EventKind::Span);
    }

    #[test]
    fn clones_share_sink_and_metrics() {
        let sink = Arc::new(BufferedSink::new(1));
        let obs = Obs::with_sink(sink.clone());
        let clone = obs.clone();
        clone.count(Counter::DriftEvents, 2);
        obs.count(Counter::DriftEvents, 1);
        assert_eq!(obs.metrics_snapshot().unwrap().counter("drift_events"), 3);
        clone.instant(1, Stage::Adopt, 0);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn null_sink_keeps_metrics() {
        let obs = Obs::with_sink(Arc::new(NullSink));
        obs.instant(0, Stage::Tick, 0);
        obs.count(Counter::Instances, 1);
        let snap = obs.metrics_snapshot().unwrap();
        assert_eq!(snap.counter("instances"), 1);
    }
}
