//! A minimal JSON reader (and float writer) for validating exports.
//!
//! The workspace is offline and dependency-free, so the exporters write
//! JSON by hand; this module closes the loop with a small strict
//! recursive-descent parser used by the equivalence tests and the CI
//! smoke step to check that every exported trace actually parses. It
//! supports the full JSON grammar minus `\u` surrogate-pair pedantry
//! (escapes are validated, not decoded pair-wise).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string, with escapes decoded (`\uXXXX` decoded as a single code
    /// unit).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are unique; duplicates are a parse error (stricter
    /// than RFC 8259 allows, looser than it recommends).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the offending byte offset for any
/// grammar violation.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Advance one whole UTF-8 scalar (input is a &str, so
                    // boundaries are trustworthy).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("&str input has valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Formats an `f64` as a JSON token: the shortest round-trip decimal for
/// finite values, `null` for NaN/infinities (JSON has no spelling for
/// them).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral values; that is
        // still a valid JSON number, so keep it.
        s
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_string())
        );
        let doc = parse(r#"{"a": [1, 2, {"b": "c"}], "d": false}"#).unwrap();
        assert_eq!(doc.get("d"), Some(&Value::Bool(false)));
        let arr = doc.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("c"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "tru",
            "[1] garbage",
            "{\"a\":1,\"a\":2}",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let doc = parse("\"caf\u{e9} \\u00e9\"").unwrap();
        assert_eq!(doc.as_str(), Some("café é"));
        let quoted = quote("a\"b\\c\nd\u{1}");
        let back = parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn float_formatting_is_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Round trip through the parser.
        assert_eq!(parse(&fmt_f64(0.1)).unwrap().as_f64(), Some(0.1));
    }
}
