//! Property-based tests of the platform model.

use mpsoc_platform::{CommMatrix, DvfsModel, PeId, PlatformBuilder};
use proptest::prelude::*;

fn arb_levels() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::btree_set(1u32..100, 1..6).prop_map(|set| {
        let mut levels: Vec<f64> = set.into_iter().map(|l| l as f64 / 100.0).collect();
        if *levels.last().unwrap() < 1.0 {
            levels.push(1.0);
        }
        levels
    })
}

proptest! {
    /// Quantization never slows a request down and always lands on a level.
    #[test]
    fn quantize_rounds_up_onto_a_level(levels in arb_levels(), req in 0.001f64..1.0) {
        let m = DvfsModel::discrete(levels.clone());
        let q = m.quantize(req);
        prop_assert!(q + 1e-12 >= req, "quantized {q} slower than request {req}");
        prop_assert!(levels.iter().any(|&l| (l - q).abs() < 1e-12));
        // Idempotent.
        prop_assert!((m.quantize(q) - q).abs() < 1e-12);
    }

    /// Energy and time factors are consistent with the quantized speed.
    #[test]
    fn factors_follow_quantized_speed(levels in arb_levels(), req in 0.001f64..1.0) {
        let m = DvfsModel::discrete(levels);
        let q = m.quantize(req);
        prop_assert!((m.energy_factor(req) - q * q).abs() < 1e-12);
        prop_assert!((m.time_factor(req) - 1.0 / q).abs() < 1e-12);
    }

    /// Continuous quantization is the identity on (0, 1].
    #[test]
    fn continuous_identity(req in 0.001f64..1.0) {
        prop_assert!((DvfsModel::Continuous.quantize(req) - req).abs() < 1e-15);
    }

    /// Energy × time product degrades linearly with speed (E·t = E_nom·wcet/s):
    /// slower always means less energy but more time, monotonically.
    #[test]
    fn energy_monotone_in_speed(a in 0.01f64..1.0, b in 0.01f64..1.0) {
        let m = DvfsModel::Continuous;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(m.energy_factor(lo) <= m.energy_factor(hi) + 1e-12);
        prop_assert!(m.time_factor(lo) + 1e-12 >= m.time_factor(hi));
    }

    /// Uniform communication matrices: delay and energy scale linearly in
    /// volume and are symmetric.
    #[test]
    fn comm_scales_linearly(
        n in 2usize..6,
        bw in 0.1f64..10.0,
        epk in 0.0f64..2.0,
        kb in 0.0f64..100.0,
    ) {
        let m = CommMatrix::uniform(n, bw, epk);
        let (a, b) = (PeId::new(0), PeId::new(n - 1));
        prop_assert!((m.delay(a, b, kb) - kb / bw).abs() < 1e-9);
        prop_assert!((m.energy(a, b, kb) - kb * epk).abs() < 1e-9);
        prop_assert!((m.delay(a, b, kb) - m.delay(b, a, kb)).abs() < 1e-12);
        prop_assert_eq!(m.delay(a, a, kb), 0.0);
    }

    /// Builder round-trip: exec time and energy behave per the model laws.
    #[test]
    fn platform_exec_laws(w in 0.1f64..20.0, e in 0.0f64..20.0, s in 0.01f64..1.0) {
        let mut b = PlatformBuilder::new(1);
        let pe = b.add_pe("p");
        b.set_wcet_row(0, vec![w]).unwrap();
        b.set_energy_row(0, vec![e]).unwrap();
        let p = b.build().unwrap();
        prop_assert!((p.exec_time(0, pe, s) - w / s).abs() < 1e-9);
        prop_assert!((p.exec_energy(0, pe, s) - e * s * s).abs() < 1e-9);
    }
}
