//! Randomized property tests of the platform model (seeded, offline — no
//! proptest dependency).

use ctg_rng::Rng64;
use mpsoc_platform::{CommMatrix, DvfsModel, PeId, PlatformBuilder};

const CASES: usize = 2000;

fn arb_levels(rng: &mut Rng64) -> Vec<f64> {
    let count = rng.gen_range(1..6usize);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < count {
        set.insert(rng.gen_range(1..100u64) as u32);
    }
    let mut levels: Vec<f64> = set.into_iter().map(|l| l as f64 / 100.0).collect();
    if *levels.last().unwrap() < 1.0 {
        levels.push(1.0);
    }
    levels
}

/// Quantization never slows a request down and always lands on a level.
#[test]
fn quantize_rounds_up_onto_a_level() {
    let mut rng = Rng64::seed_from_u64(0x91A7_0001);
    for _ in 0..CASES {
        let levels = arb_levels(&mut rng);
        let req = rng.gen_range(0.001..1.0);
        let m = DvfsModel::discrete(levels.clone());
        let q = m.quantize(req);
        assert!(q + 1e-12 >= req, "quantized {q} slower than request {req}");
        assert!(levels.iter().any(|&l| (l - q).abs() < 1e-12));
        // Idempotent.
        assert!((m.quantize(q) - q).abs() < 1e-12);
    }
}

/// Energy and time factors are consistent with the quantized speed.
#[test]
fn factors_follow_quantized_speed() {
    let mut rng = Rng64::seed_from_u64(0x91A7_0002);
    for _ in 0..CASES {
        let levels = arb_levels(&mut rng);
        let req = rng.gen_range(0.001..1.0);
        let m = DvfsModel::discrete(levels);
        let q = m.quantize(req);
        assert!((m.energy_factor(req) - q * q).abs() < 1e-12);
        assert!((m.time_factor(req) - 1.0 / q).abs() < 1e-12);
    }
}

/// Continuous quantization is the identity on (0, 1].
#[test]
fn continuous_identity() {
    let mut rng = Rng64::seed_from_u64(0x91A7_0003);
    for _ in 0..CASES {
        let req = rng.gen_range(0.001..1.0);
        assert!((DvfsModel::Continuous.quantize(req) - req).abs() < 1e-15);
    }
}

/// Energy decreases and time increases monotonically as speed drops.
#[test]
fn energy_monotone_in_speed() {
    let mut rng = Rng64::seed_from_u64(0x91A7_0004);
    for _ in 0..CASES {
        let a = rng.gen_range(0.01..1.0);
        let b = rng.gen_range(0.01..1.0);
        let m = DvfsModel::Continuous;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert!(m.energy_factor(lo) <= m.energy_factor(hi) + 1e-12);
        assert!(m.time_factor(lo) + 1e-12 >= m.time_factor(hi));
    }
}

/// Uniform communication matrices: delay and energy scale linearly in
/// volume and are symmetric.
#[test]
fn comm_scales_linearly() {
    let mut rng = Rng64::seed_from_u64(0x91A7_0005);
    for _ in 0..CASES {
        let n = rng.gen_range(2..6usize);
        let bw = rng.gen_range(0.1..10.0);
        let epk = rng.gen_range(0.0..2.0);
        let kb = rng.gen_range(0.0..100.0);
        let m = CommMatrix::uniform(n, bw, epk);
        let (a, b) = (PeId::new(0), PeId::new(n - 1));
        assert!((m.delay(a, b, kb) - kb / bw).abs() < 1e-9);
        assert!((m.energy(a, b, kb) - kb * epk).abs() < 1e-9);
        assert!((m.delay(a, b, kb) - m.delay(b, a, kb)).abs() < 1e-12);
        assert_eq!(m.delay(a, a, kb), 0.0);
    }
}

/// Builder round-trip: exec time and energy behave per the model laws.
#[test]
fn platform_exec_laws() {
    let mut rng = Rng64::seed_from_u64(0x91A7_0006);
    for _ in 0..CASES {
        let w = rng.gen_range(0.1..20.0);
        let e = rng.gen_range(0.0..20.0);
        let s = rng.gen_range(0.01..1.0);
        let mut b = PlatformBuilder::new(1);
        let pe = b.add_pe("p");
        b.set_wcet_row(0, vec![w]).unwrap();
        b.set_energy_row(0, vec![e]).unwrap();
        let p = b.build().unwrap();
        assert!((p.exec_time(0, pe, s) - w / s).abs() < 1e-9);
        assert!((p.exec_energy(0, pe, s) - e * s * s).abs() < 1e-9);
    }
}
