//! Per-(task, PE) execution profiles.

use crate::pe::PeId;

/// Worst-case execution time and energy of every task on every PE at the
/// nominal supply voltage — the paper's `WCET(τi, pj)` and `E(τi, pj)`.
///
/// Rows are indexed by dense task index, columns by PE index. A value of
/// `f64::INFINITY` in the WCET table marks a task that cannot run on that PE
/// (heterogeneous platforms).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    pub(crate) wcet: Vec<Vec<f64>>,
    pub(crate) energy: Vec<Vec<f64>>,
}

impl ExecProfile {
    /// `WCET(task, pe)` at nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of range.
    pub fn wcet(&self, task: usize, pe: PeId) -> f64 {
        self.wcet[task][pe.index()]
    }

    /// `E(task, pe)` at nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of range.
    pub fn energy(&self, task: usize, pe: PeId) -> f64 {
        self.energy[task][pe.index()]
    }

    /// Average WCET of `task` over the PEs that can execute it, at each PE's
    /// maximum frequency (the `wcet*` used by the paper's static levels and
    /// the DLS bias term δ).
    ///
    /// # Panics
    ///
    /// Panics when `task` is out of range or cannot run on any PE.
    pub fn wcet_avg(&self, task: usize) -> f64 {
        let finite: Vec<f64> = self.wcet[task]
            .iter()
            .copied()
            .filter(|w| w.is_finite())
            .collect();
        assert!(!finite.is_empty(), "task {task} cannot run on any PE");
        finite.iter().sum::<f64>() / finite.len() as f64
    }

    /// Whether `task` can execute on `pe`.
    pub fn can_run(&self, task: usize, pe: PeId) -> bool {
        self.wcet[task][pe.index()].is_finite()
    }

    /// Number of tasks covered by the profile.
    pub fn num_tasks(&self) -> usize {
        self.wcet.len()
    }

    /// Number of PEs covered by the profile.
    pub fn num_pes(&self) -> usize {
        self.wcet.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ExecProfile {
        ExecProfile {
            wcet: vec![vec![2.0, 4.0], vec![f64::INFINITY, 3.0]],
            energy: vec![vec![1.0, 2.0], vec![0.0, 3.0]],
        }
    }

    #[test]
    fn lookups() {
        let p = profile();
        assert_eq!(p.wcet(0, PeId::new(1)), 4.0);
        assert_eq!(p.energy(1, PeId::new(1)), 3.0);
        assert_eq!(p.num_tasks(), 2);
        assert_eq!(p.num_pes(), 2);
    }

    #[test]
    fn average_skips_unrunnable_pes() {
        let p = profile();
        assert_eq!(p.wcet_avg(0), 3.0);
        assert_eq!(p.wcet_avg(1), 3.0); // only PE 1 can run task 1
        assert!(p.can_run(0, PeId::new(0)));
        assert!(!p.can_run(1, PeId::new(0)));
    }
}
