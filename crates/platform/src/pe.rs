//! Processing elements.

use std::fmt;

/// Identifier of a processing element within a [`Platform`](crate::Platform).
///
/// ```
/// use mpsoc_platform::PeId;
/// assert_eq!(PeId::new(2).to_string(), "p2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(u32);

impl PeId {
    /// Creates a PE id from a dense index.
    pub fn new(index: usize) -> Self {
        PeId(index as u32)
    }

    /// Returns the dense index of this PE.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<PeId> for usize {
    fn from(id: PeId) -> usize {
        id.index()
    }
}

/// A processing element of the MPSoC.
#[derive(Debug, Clone, PartialEq)]
pub struct Pe {
    pub(crate) name: String,
}

impl Pe {
    /// Human-readable name of the PE.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_id_roundtrip() {
        let p = PeId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(usize::from(p), 3);
        assert!(PeId::new(0) < p);
    }
}
