//! The assembled platform.

use crate::comm::CommMatrix;
use crate::dvfs::DvfsModel;
use crate::pe::{Pe, PeId};
use crate::profile::ExecProfile;

/// A validated MPSoC platform: PEs, execution profile, link matrix and DVFS
/// model.
///
/// Construct with [`PlatformBuilder`](crate::PlatformBuilder).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    pub(crate) pes: Vec<Pe>,
    pub(crate) profile: ExecProfile,
    pub(crate) comm: CommMatrix,
    pub(crate) dvfs: DvfsModel,
}

impl Platform {
    /// Number of processing elements.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// All PE ids in index order.
    pub fn pes(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.pes.len()).map(PeId::new)
    }

    /// The PE payload.
    ///
    /// # Panics
    ///
    /// Panics if `pe` does not belong to this platform.
    pub fn pe(&self, pe: PeId) -> &Pe {
        &self.pes[pe.index()]
    }

    /// The per-(task, PE) WCET/energy tables.
    pub fn profile(&self) -> &ExecProfile {
        &self.profile
    }

    /// The communication link matrix.
    pub fn comm(&self) -> &CommMatrix {
        &self.comm
    }

    /// The DVFS model.
    pub fn dvfs(&self) -> &DvfsModel {
        &self.dvfs
    }

    /// Number of tasks the profile covers.
    pub fn num_tasks(&self) -> usize {
        self.profile.num_tasks()
    }

    /// Execution time of `task` on `pe` at speed ratio `speed`.
    pub fn exec_time(&self, task: usize, pe: PeId, speed: f64) -> f64 {
        self.profile.wcet(task, pe) * self.dvfs.time_factor(speed)
    }

    /// Energy of `task` on `pe` at speed ratio `speed`.
    pub fn exec_energy(&self, task: usize, pe: PeId, speed: f64) -> f64 {
        self.profile.energy(task, pe) * self.dvfs.energy_factor(speed)
    }

    /// Returns a copy of the platform with a different DVFS model.
    pub fn with_dvfs(&self, dvfs: DvfsModel) -> Platform {
        Platform {
            dvfs,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::PlatformBuilder;
    use crate::dvfs::DvfsModel;
    use crate::pe::PeId;

    fn two_pe_platform() -> crate::Platform {
        let mut b = PlatformBuilder::new(1);
        let _p0 = b.add_pe("a");
        let _p1 = b.add_pe("b");
        b.set_wcet_row(0, vec![2.0, 4.0]).unwrap();
        b.set_energy_row(0, vec![3.0, 5.0]).unwrap();
        b.uniform_links(1.0, 0.1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn exec_time_and_energy_scale_with_speed() {
        let p = two_pe_platform();
        let p0 = PeId::new(0);
        assert_eq!(p.exec_time(0, p0, 1.0), 2.0);
        assert_eq!(p.exec_time(0, p0, 0.5), 4.0);
        assert_eq!(p.exec_energy(0, p0, 1.0), 3.0);
        assert!((p.exec_energy(0, p0, 0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn with_dvfs_swaps_model() {
        let p = two_pe_platform().with_dvfs(DvfsModel::discrete(vec![0.5, 1.0]));
        let p0 = PeId::new(0);
        // 0.4 quantizes to 0.5.
        assert_eq!(p.exec_time(0, p0, 0.4), 4.0);
    }
}
