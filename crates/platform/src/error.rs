//! Platform construction errors.

use std::error::Error;
use std::fmt;

/// Error produced while building a [`Platform`](crate::Platform).
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// No PEs were added.
    NoPes,
    /// A table row index is out of the declared task range.
    TaskOutOfRange(usize),
    /// A table row has the wrong number of PE columns.
    WrongRowWidth {
        /// The offending task row.
        task: usize,
        /// Number of PEs in the platform.
        expected: usize,
        /// Number of columns supplied.
        got: usize,
    },
    /// A WCET entry is zero/negative (use `f64::INFINITY` to mark a task as
    /// unrunnable on a PE) or an energy entry is negative or non-finite.
    InvalidEntry {
        /// The offending task row.
        task: usize,
        /// The offending PE column.
        pe: usize,
    },
    /// A WCET or energy row was never supplied for a task.
    MissingRow(usize),
    /// A task cannot run on any PE.
    Unrunnable(usize),
    /// Link endpoints out of range or identical.
    BadLink {
        /// Source PE index.
        src: usize,
        /// Destination PE index.
        dst: usize,
    },
    /// Link bandwidth or energy is not positive/finite.
    InvalidLink {
        /// Source PE index.
        src: usize,
        /// Destination PE index.
        dst: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoPes => write!(f, "platform has no processing elements"),
            PlatformError::TaskOutOfRange(t) => write!(f, "task index {t} out of range"),
            PlatformError::WrongRowWidth {
                task,
                expected,
                got,
            } => write!(
                f,
                "row for task {task} has {got} columns, platform has {expected} PEs"
            ),
            PlatformError::InvalidEntry { task, pe } => {
                write!(f, "invalid table entry at task {task}, PE {pe}")
            }
            PlatformError::MissingRow(t) => write!(f, "no WCET/energy row for task {t}"),
            PlatformError::Unrunnable(t) => write!(f, "task {t} cannot run on any PE"),
            PlatformError::BadLink { src, dst } => {
                write!(f, "invalid link endpoints {src} -> {dst}")
            }
            PlatformError::InvalidLink { src, dst } => {
                write!(f, "invalid link parameters on {src} -> {dst}")
            }
        }
    }
}

impl Error for PlatformError {}
