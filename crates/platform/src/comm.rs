//! Point-to-point communication links.

use crate::pe::PeId;

/// A directed communication link between two PEs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Bandwidth in Kbytes per time unit (`B(pi, pj)`).
    pub bandwidth: f64,
    /// Transmission energy per Kbyte (`E_tr(pi, pj)`).
    pub energy_per_kb: f64,
}

/// The full link matrix of the platform.
///
/// Intra-PE transfers are free and instantaneous. Voltage scaling is never
/// applied to communication (paper §II). Each PE owns a dedicated
/// communication resource, so transfers on distinct links never contend.
#[derive(Debug, Clone, PartialEq)]
pub struct CommMatrix {
    pub(crate) links: Vec<Vec<Option<Link>>>,
}

impl CommMatrix {
    /// Creates a matrix with no inter-PE links for `n` PEs.
    pub fn disconnected(n: usize) -> Self {
        CommMatrix {
            links: vec![vec![None; n]; n],
        }
    }

    /// Creates a fully connected matrix where every ordered PE pair shares
    /// the same bandwidth and per-Kbyte energy.
    pub fn uniform(n: usize, bandwidth: f64, energy_per_kb: f64) -> Self {
        let mut m = CommMatrix::disconnected(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.links[i][j] = Some(Link {
                        bandwidth,
                        energy_per_kb,
                    });
                }
            }
        }
        m
    }

    /// The link from `src` to `dst`, if any. Self links are `None`.
    pub fn link(&self, src: PeId, dst: PeId) -> Option<Link> {
        self.links[src.index()][dst.index()]
    }

    /// Whether a transfer from `src` to `dst` is possible (always true for
    /// `src == dst`).
    pub fn connected(&self, src: PeId, dst: PeId) -> bool {
        src == dst || self.link(src, dst).is_some()
    }

    /// Transfer delay for `kbytes` Kbytes from `src` to `dst`.
    ///
    /// Intra-PE transfers take zero time; missing links yield infinity so an
    /// impossible mapping is never selected by the scheduler.
    pub fn delay(&self, src: PeId, dst: PeId, kbytes: f64) -> f64 {
        if src == dst || kbytes == 0.0 {
            return 0.0;
        }
        match self.link(src, dst) {
            Some(l) => kbytes / l.bandwidth,
            None => f64::INFINITY,
        }
    }

    /// Transfer energy for `kbytes` Kbytes from `src` to `dst`.
    ///
    /// Intra-PE transfers are free; missing links yield infinity.
    pub fn energy(&self, src: PeId, dst: PeId, kbytes: f64) -> f64 {
        if src == dst || kbytes == 0.0 {
            return 0.0;
        }
        match self.link(src, dst) {
            Some(l) => kbytes * l.energy_per_kb,
            None => f64::INFINITY,
        }
    }

    /// Number of PEs covered.
    pub fn num_pes(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix_connects_all_pairs() {
        let m = CommMatrix::uniform(3, 2.0, 0.5);
        for i in 0..3 {
            for j in 0..3 {
                let (pi, pj) = (PeId::new(i), PeId::new(j));
                assert!(m.connected(pi, pj));
                if i == j {
                    assert!(m.link(pi, pj).is_none());
                }
            }
        }
    }

    #[test]
    fn delay_and_energy() {
        let m = CommMatrix::uniform(2, 2.0, 0.5);
        let (p0, p1) = (PeId::new(0), PeId::new(1));
        assert_eq!(m.delay(p0, p1, 4.0), 2.0);
        assert_eq!(m.energy(p0, p1, 4.0), 2.0);
        assert_eq!(m.delay(p0, p0, 4.0), 0.0);
        assert_eq!(m.energy(p0, p0, 4.0), 0.0);
        assert_eq!(m.delay(p0, p1, 0.0), 0.0);
    }

    #[test]
    fn missing_link_is_infinite() {
        let m = CommMatrix::disconnected(2);
        let (p0, p1) = (PeId::new(0), PeId::new(1));
        assert_eq!(m.delay(p0, p1, 1.0), f64::INFINITY);
        assert_eq!(m.energy(p0, p1, 1.0), f64::INFINITY);
        assert!(!m.connected(p0, p1));
        assert!(m.connected(p0, p0));
    }
}
