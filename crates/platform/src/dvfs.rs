//! Dynamic voltage and frequency scaling model.

/// How per-task speed ratios map to realizable operating points.
///
/// A *speed ratio* `s ∈ (0, 1]` is the task frequency divided by the PE's
/// nominal (maximum) frequency. Under the paper's assumptions — unit load
/// capacitance and supply voltage proportional to frequency — energy scales
/// as `s²` and execution time as `1/s`:
///
/// `E(s) = E_nom · s²`, `t(s) = WCET / s`.
///
/// The paper evaluates a continuous model; [`DvfsModel::Discrete`] is
/// provided as an extension for platforms with a fixed level set (speeds are
/// rounded **up** to the next available level so deadlines remain safe).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum DvfsModel {
    /// Any speed ratio in `(0, 1]` is realizable.
    #[default]
    Continuous,
    /// Only the listed speed ratios are realizable. The list must be sorted
    /// ascending, each in `(0, 1]`, and end with `1.0`.
    Discrete(Vec<f64>),
}

impl DvfsModel {
    /// Creates a discrete model from a level list.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, unsorted, contains values outside
    /// `(0, 1]`, or does not end with `1.0`.
    pub fn discrete(levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "level list must not be empty");
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly ascending"
        );
        assert!(
            levels.iter().all(|&l| l > 0.0 && l <= 1.0),
            "levels must lie in (0, 1]"
        );
        assert!(
            (levels[levels.len() - 1] - 1.0).abs() < 1e-12,
            "the nominal speed 1.0 must be available"
        );
        DvfsModel::Discrete(levels)
    }

    /// Maps a requested speed ratio to the closest realizable ratio that is
    /// at least as fast (so a stretched task never misses its share of the
    /// deadline).
    ///
    /// Requests are clamped into `(0, 1]` first.
    pub fn quantize(&self, speed: f64) -> f64 {
        let s = speed.clamp(f64::MIN_POSITIVE, 1.0);
        match self {
            DvfsModel::Continuous => s,
            DvfsModel::Discrete(levels) => {
                *levels.iter().find(|&&l| l + 1e-12 >= s).unwrap_or(&1.0)
            }
        }
    }

    /// Energy multiplier at speed ratio `s` (`s²` under the paper's model).
    pub fn energy_factor(&self, speed: f64) -> f64 {
        let s = self.quantize(speed);
        s * s
    }

    /// Execution-time multiplier at speed ratio `s` (`1/s`).
    pub fn time_factor(&self, speed: f64) -> f64 {
        1.0 / self.quantize(speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_identity() {
        let m = DvfsModel::Continuous;
        assert_eq!(m.quantize(0.37), 0.37);
        assert_eq!(m.quantize(2.0), 1.0);
        assert!((m.energy_factor(0.5) - 0.25).abs() < 1e-12);
        assert!((m.time_factor(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn discrete_rounds_up() {
        let m = DvfsModel::discrete(vec![0.25, 0.5, 0.75, 1.0]);
        assert_eq!(m.quantize(0.1), 0.25);
        assert_eq!(m.quantize(0.25), 0.25);
        assert_eq!(m.quantize(0.3), 0.5);
        assert_eq!(m.quantize(0.9), 1.0);
        assert_eq!(m.quantize(1.0), 1.0);
    }

    #[test]
    fn discrete_energy_uses_quantized_speed() {
        let m = DvfsModel::discrete(vec![0.5, 1.0]);
        // 0.4 rounds up to 0.5 → energy factor 0.25, time factor 2.
        assert!((m.energy_factor(0.4) - 0.25).abs() < 1e-12);
        assert!((m.time_factor(0.4) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn discrete_requires_nominal_level() {
        let _ = DvfsModel::discrete(vec![0.5, 0.9]);
    }

    #[test]
    #[should_panic]
    fn discrete_requires_sorted_levels() {
        let _ = DvfsModel::discrete(vec![0.5, 0.25, 1.0]);
    }
}
