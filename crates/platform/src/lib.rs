//! Multiprocessor system-on-chip (MPSoC) architecture model.
//!
//! Following §II of the paper, an architecture consists of:
//!
//! * a set of processing elements `P = {p1, …, pn}` ([`Pe`], [`PeId`]),
//! * per-(task, PE) worst-case execution time and energy tables at the
//!   nominal supply voltage ([`ExecProfile`]),
//! * point-to-point communication links with a bandwidth and a per-Kbyte
//!   transmission energy ([`CommMatrix`]) — each PE has a dedicated
//!   communication resource and voltage scaling does **not** apply to
//!   communication,
//! * a DVFS model ([`DvfsModel`]): with unit load capacitance and voltage
//!   proportional to frequency (the paper's §IV assumptions), running a task
//!   at speed ratio `s ∈ (0, 1]` multiplies its execution time by `1/s` and
//!   its energy by `s²`.
//!
//! # Example
//!
//! ```
//! use mpsoc_platform::{PlatformBuilder, DvfsModel};
//!
//! # fn main() -> Result<(), mpsoc_platform::PlatformError> {
//! // 2 PEs, 3 tasks.
//! let mut b = PlatformBuilder::new(3);
//! let p0 = b.add_pe("risc");
//! let p1 = b.add_pe("dsp");
//! b.set_wcet_row(0, vec![4.0, 2.0])?;   // task 0 is faster on the DSP
//! b.set_wcet_row(1, vec![3.0, 3.0])?;
//! b.set_wcet_row(2, vec![5.0, 8.0])?;
//! b.set_energy_row(0, vec![4.0, 3.0])?;
//! b.set_energy_row(1, vec![3.0, 3.0])?;
//! b.set_energy_row(2, vec![5.0, 9.0])?;
//! b.set_link(p0, p1, 1.0, 0.1)?;        // 1 Kbyte per time unit, 0.1 energy/KB
//! let platform = b.build()?;
//! assert_eq!(platform.num_pes(), 2);
//! assert_eq!(platform.profile().wcet_avg(0), 3.0);
//! assert_eq!(DvfsModel::Continuous.energy_factor(0.5), 0.25);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod comm;
mod dvfs;
mod error;
mod pe;
mod platform;
mod profile;

pub use builder::PlatformBuilder;
pub use comm::{CommMatrix, Link};
pub use dvfs::DvfsModel;
pub use error::PlatformError;
pub use pe::{Pe, PeId};
pub use platform::Platform;
pub use profile::ExecProfile;
