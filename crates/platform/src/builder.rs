//! Builder and validation for [`Platform`].

use crate::comm::{CommMatrix, Link};
use crate::dvfs::DvfsModel;
use crate::error::PlatformError;
use crate::pe::{Pe, PeId};
use crate::platform::Platform;
use crate::profile::ExecProfile;

/// Incremental builder for a [`Platform`].
///
/// The number of tasks is fixed up front (it must match the CTG the platform
/// will execute); PEs, table rows and links are then added and
/// [`PlatformBuilder::build`] validates completeness.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    num_tasks: usize,
    pes: Vec<Pe>,
    wcet: Vec<Option<Vec<f64>>>,
    energy: Vec<Option<Vec<f64>>>,
    links: Vec<(PeId, PeId, Link)>,
    uniform: Option<Link>,
    dvfs: DvfsModel,
}

impl PlatformBuilder {
    /// Creates a builder for a platform executing `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        PlatformBuilder {
            num_tasks,
            pes: Vec::new(),
            wcet: vec![None; num_tasks],
            energy: vec![None; num_tasks],
            links: Vec::new(),
            uniform: None,
            dvfs: DvfsModel::Continuous,
        }
    }

    /// Adds a processing element and returns its id.
    pub fn add_pe(&mut self, name: impl Into<String>) -> PeId {
        let id = PeId::new(self.pes.len());
        self.pes.push(Pe { name: name.into() });
        id
    }

    /// Sets the WCET row of `task` (one entry per PE, in PE order).
    ///
    /// Use `f64::INFINITY` to mark the task unrunnable on a PE.
    ///
    /// # Errors
    ///
    /// Returns an error when the task index is out of range or an entry is
    /// zero, negative or NaN.
    pub fn set_wcet_row(&mut self, task: usize, row: Vec<f64>) -> Result<&mut Self, PlatformError> {
        if task >= self.num_tasks {
            return Err(PlatformError::TaskOutOfRange(task));
        }
        for (pe, &w) in row.iter().enumerate() {
            if w.is_nan() || w <= 0.0 {
                return Err(PlatformError::InvalidEntry { task, pe });
            }
        }
        self.wcet[task] = Some(row);
        Ok(self)
    }

    /// Sets the nominal-voltage energy row of `task` (one entry per PE).
    ///
    /// # Errors
    ///
    /// Returns an error when the task index is out of range or an entry is
    /// negative or non-finite.
    pub fn set_energy_row(
        &mut self,
        task: usize,
        row: Vec<f64>,
    ) -> Result<&mut Self, PlatformError> {
        if task >= self.num_tasks {
            return Err(PlatformError::TaskOutOfRange(task));
        }
        for (pe, &e) in row.iter().enumerate() {
            if !e.is_finite() || e < 0.0 {
                return Err(PlatformError::InvalidEntry { task, pe });
            }
        }
        self.energy[task] = Some(row);
        Ok(self)
    }

    /// Adds a bidirectional link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error for identical endpoints, out-of-range PEs, or
    /// non-positive bandwidth/energy.
    pub fn set_link(
        &mut self,
        a: PeId,
        b: PeId,
        bandwidth: f64,
        energy_per_kb: f64,
    ) -> Result<&mut Self, PlatformError> {
        if a == b || a.index() >= self.pes.len() || b.index() >= self.pes.len() {
            return Err(PlatformError::BadLink {
                src: a.index(),
                dst: b.index(),
            });
        }
        if !(bandwidth.is_finite()
            && bandwidth > 0.0
            && energy_per_kb.is_finite()
            && energy_per_kb >= 0.0)
        {
            return Err(PlatformError::InvalidLink {
                src: a.index(),
                dst: b.index(),
            });
        }
        let link = Link {
            bandwidth,
            energy_per_kb,
        };
        self.links.push((a, b, link));
        self.links.push((b, a, link));
        Ok(self)
    }

    /// Connects every ordered pair of PEs with the same parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive bandwidth or negative energy.
    pub fn uniform_links(
        &mut self,
        bandwidth: f64,
        energy_per_kb: f64,
    ) -> Result<&mut Self, PlatformError> {
        if !(bandwidth.is_finite()
            && bandwidth > 0.0
            && energy_per_kb.is_finite()
            && energy_per_kb >= 0.0)
        {
            return Err(PlatformError::InvalidLink { src: 0, dst: 0 });
        }
        self.uniform = Some(Link {
            bandwidth,
            energy_per_kb,
        });
        Ok(self)
    }

    /// Sets the DVFS model (defaults to [`DvfsModel::Continuous`]).
    pub fn dvfs(&mut self, model: DvfsModel) -> &mut Self {
        self.dvfs = model;
        self
    }

    /// Validates and assembles the platform.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::NoPes`] — no PEs were added;
    /// * [`PlatformError::MissingRow`] — a task has no WCET or energy row;
    /// * [`PlatformError::WrongRowWidth`] — a row does not match the PE count;
    /// * [`PlatformError::Unrunnable`] — a task has no finite WCET anywhere.
    pub fn build(&self) -> Result<Platform, PlatformError> {
        let n = self.pes.len();
        if n == 0 {
            return Err(PlatformError::NoPes);
        }
        let mut wcet = Vec::with_capacity(self.num_tasks);
        let mut energy = Vec::with_capacity(self.num_tasks);
        for t in 0..self.num_tasks {
            let w = self.wcet[t].clone().ok_or(PlatformError::MissingRow(t))?;
            let e = self.energy[t].clone().ok_or(PlatformError::MissingRow(t))?;
            for (row, label) in [(&w, 0), (&e, 1)] {
                if row.len() != n {
                    let _ = label;
                    return Err(PlatformError::WrongRowWidth {
                        task: t,
                        expected: n,
                        got: row.len(),
                    });
                }
            }
            if !w.iter().any(|x| x.is_finite()) {
                return Err(PlatformError::Unrunnable(t));
            }
            wcet.push(w);
            energy.push(e);
        }
        let mut comm = match self.uniform {
            Some(l) => CommMatrix::uniform(n, l.bandwidth, l.energy_per_kb),
            None => CommMatrix::disconnected(n),
        };
        for &(a, b, link) in &self.links {
            comm.links[a.index()][b.index()] = Some(link);
        }
        Ok(Platform {
            pes: self.pes.clone(),
            profile: ExecProfile { wcet, energy },
            comm,
            dvfs: self.dvfs.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_platform() {
        assert_eq!(PlatformBuilder::new(0).build(), Err(PlatformError::NoPes));
    }

    #[test]
    fn rejects_missing_rows() {
        let mut b = PlatformBuilder::new(1);
        b.add_pe("a");
        assert_eq!(b.build(), Err(PlatformError::MissingRow(0)));
        b.set_wcet_row(0, vec![1.0]).unwrap();
        assert_eq!(b.build(), Err(PlatformError::MissingRow(0)));
    }

    #[test]
    fn rejects_wrong_width_and_unrunnable() {
        let mut b = PlatformBuilder::new(1);
        b.add_pe("a");
        b.add_pe("b");
        b.set_wcet_row(0, vec![1.0]).unwrap();
        b.set_energy_row(0, vec![1.0, 1.0]).unwrap();
        assert!(matches!(
            b.build(),
            Err(PlatformError::WrongRowWidth { .. })
        ));

        let mut b = PlatformBuilder::new(1);
        b.add_pe("a");
        b.set_wcet_row(0, vec![f64::INFINITY]).unwrap();
        b.set_energy_row(0, vec![1.0]).unwrap();
        assert_eq!(b.build(), Err(PlatformError::Unrunnable(0)));
    }

    #[test]
    fn rejects_invalid_entries_and_links() {
        let mut b = PlatformBuilder::new(2);
        let a = b.add_pe("a");
        let c = b.add_pe("c");
        assert!(b.set_wcet_row(0, vec![0.0, 1.0]).is_err());
        assert!(b.set_wcet_row(9, vec![1.0, 1.0]).is_err());
        assert!(b.set_energy_row(0, vec![-1.0, 1.0]).is_err());
        assert!(b.set_link(a, a, 1.0, 0.1).is_err());
        assert!(b.set_link(a, c, 0.0, 0.1).is_err());
        assert!(b.set_link(a, c, 1.0, -0.1).is_err());
        assert!(b.uniform_links(0.0, 0.1).is_err());
    }

    #[test]
    fn explicit_links_override_uniform() {
        let mut b = PlatformBuilder::new(1);
        let a = b.add_pe("a");
        let c = b.add_pe("c");
        b.set_wcet_row(0, vec![1.0, 1.0]).unwrap();
        b.set_energy_row(0, vec![1.0, 1.0]).unwrap();
        b.uniform_links(1.0, 0.1).unwrap();
        b.set_link(a, c, 4.0, 0.2).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.comm().link(a, c).unwrap().bandwidth, 4.0);
        assert_eq!(p.comm().link(c, a).unwrap().bandwidth, 4.0);
    }

    #[test]
    fn bidirectional_links() {
        let mut b = PlatformBuilder::new(1);
        let a = b.add_pe("a");
        let c = b.add_pe("c");
        b.set_wcet_row(0, vec![1.0, 1.0]).unwrap();
        b.set_energy_row(0, vec![1.0, 1.0]).unwrap();
        b.set_link(a, c, 2.0, 0.3).unwrap();
        let p = b.build().unwrap();
        assert!(p.comm().connected(a, c));
        assert!(p.comm().connected(c, a));
        assert_eq!(p.comm().delay(c, a, 4.0), 2.0);
    }
}
