//! Seeded random conditional task graph generation, in the spirit of TGFF
//! (Dick, Rhodes & Wolf) as used by the paper's evaluation.
//!
//! Two graph families are produced, matching §IV of the paper:
//!
//! * **Category 1** ([`Category::ForkJoin`]) — fork-join graphs with
//!   (possibly nested) conditional branches, the family of the MPEG and
//!   cruise-controller applications;
//! * **Category 2** ([`Category::Layered`]) — layered DAGs without fork-join
//!   structure or nested conditional branches.
//!
//! The generator also synthesizes matching heterogeneous platforms and
//! random branch probability tables, all deterministically from a seed.
//!
//! # Example
//!
//! ```
//! use tgff_gen::{Category, TgffConfig};
//!
//! let cfg = TgffConfig::new(42, 25, 3, Category::ForkJoin);
//! let g = cfg.generate();
//! assert_eq!(g.ctg.num_branches(), 3);
//! assert!(g.ctg.num_tasks() >= 25);
//! let platform = cfg.generate_platform(&g.ctg, 3);
//! assert_eq!(platform.num_pes(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod forkjoin;
mod layered;
mod platform;

use ctg_model::{BranchProbs, Ctg};
use ctg_rng::Rng64;
use mpsoc_platform::Platform;

/// Graph family selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Category 1: fork-join with nested conditional branches.
    ForkJoin,
    /// Category 2: layered DAG, no fork-join, no nesting.
    Layered,
}

/// Configuration of one random CTG (the paper's `a/b/c` triplet's `a` and
/// `c`; the PE count `b` is passed to [`TgffConfig::generate_platform`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TgffConfig {
    /// Seed for all randomness.
    pub seed: u64,
    /// Minimum number of tasks (`a`); the construction may add a few joins.
    pub num_tasks: usize,
    /// Exact number of conditional branch fork nodes (`c`).
    pub num_branches: usize,
    /// Graph family.
    pub category: Category,
    /// Range of task base WCETs.
    pub wcet_range: (f64, f64),
    /// Per-PE WCET heterogeneity factor range (multiplies the base WCET).
    pub pe_factor_range: (f64, f64),
    /// Energy per unit WCET range (energy = base WCET × factor).
    pub energy_factor_range: (f64, f64),
    /// Edge communication volume range (Kbytes).
    pub comm_range: (f64, f64),
    /// Link bandwidth (Kbytes / time unit) for the generated platform.
    pub link_bandwidth: f64,
    /// Link transmission energy per Kbyte.
    pub link_energy_per_kb: f64,
    /// Alternatives per branch fork node (the paper uses binary branches;
    /// k-ary forks are supported throughout the stack).
    pub branch_alternatives: u8,
}

impl TgffConfig {
    /// Creates a configuration with the paper-inspired default profile.
    pub fn new(seed: u64, num_tasks: usize, num_branches: usize, category: Category) -> Self {
        TgffConfig {
            seed,
            num_tasks,
            num_branches,
            category,
            wcet_range: (1.0, 9.0),
            pe_factor_range: (0.7, 1.3),
            energy_factor_range: (0.8, 1.2),
            comm_range: (0.5, 4.0),
            link_bandwidth: 2.0,
            link_energy_per_kb: 0.3,
            branch_alternatives: 2,
        }
    }

    /// Generates the random CTG.
    ///
    /// # Panics
    ///
    /// Panics if the task budget is too small to host the requested branch
    /// count (each conditional section needs at least four tasks).
    pub fn generate(&self) -> GeneratedCtg {
        assert!(
            self.branch_alternatives >= 2,
            "a branch needs at least two alternatives"
        );
        let section = self.branch_alternatives as usize + 2; // fork + arms + join
        assert!(
            self.num_tasks >= 2 + section * self.num_branches,
            "task budget too small for {} branch nodes with {} alternatives",
            self.num_branches,
            self.branch_alternatives
        );
        let mut rng = Rng64::seed_from_u64(self.seed);
        let ctg = match self.category {
            Category::ForkJoin => forkjoin::generate(self, &mut rng),
            Category::Layered => layered::generate(self, &mut rng),
        };
        let probs = random_probs(&ctg, &mut rng);
        GeneratedCtg { ctg, probs }
    }

    /// Generates a heterogeneous platform for `ctg` with `num_pes` PEs,
    /// derived from the same seed.
    pub fn generate_platform(&self, ctg: &Ctg, num_pes: usize) -> Platform {
        let mut rng = Rng64::seed_from_u64(self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        platform::generate(self, ctg, num_pes, &mut rng)
    }
}

/// A generated CTG together with randomly drawn "true" branch probabilities.
#[derive(Debug, Clone)]
pub struct GeneratedCtg {
    /// The graph (deadline initialized to the sum of base WCETs — always
    /// schedulable; callers usually rescale via [`Ctg::with_deadline`]).
    pub ctg: Ctg,
    /// Randomly generated branch probabilities (the paper: "the branching
    /// probabilities for all branching nodes were randomly generated").
    pub probs: BranchProbs,
}

fn random_probs(ctg: &Ctg, rng: &mut Rng64) -> BranchProbs {
    let mut probs = BranchProbs::new();
    for &b in ctg.branch_nodes() {
        let k = ctg.node(b).alternatives() as usize;
        // Draw each weight away from 0 so no alternative is impossible.
        let weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.15..0.85)).collect();
        let total: f64 = weights.iter().sum();
        probs
            .set(b, weights.into_iter().map(|w| w / total).collect())
            .expect("normalized weights form a distribution");
    }
    probs
}

/// Returns the paper's five Table-1 test cases `(a, b, c)` with stable seeds.
pub fn table1_cases() -> Vec<(TgffConfig, usize)> {
    let triplets = [
        (25usize, 3usize, 3usize),
        (16, 3, 1),
        (15, 4, 2),
        (15, 4, 2),
        (25, 4, 3),
    ];
    triplets
        .iter()
        .enumerate()
        .map(|(i, &(a, b, c))| {
            (
                TgffConfig::new(1640 + i as u64, a, c, Category::ForkJoin),
                b,
            )
        })
        .collect()
}

/// Returns the paper's ten Table-4/5 test cases: five Category-1 graphs
/// followed by five Category-2 graphs with the listed `a/b/c` triplets.
pub fn table45_cases() -> Vec<(TgffConfig, usize)> {
    let cat1 = [
        (25usize, 3usize, 3usize),
        (16, 3, 1),
        (15, 4, 2),
        (15, 4, 1),
        (25, 4, 3),
    ];
    let cat2 = cat1;
    let mut out = Vec::new();
    for (i, &(a, b, c)) in cat1.iter().enumerate() {
        out.push((
            TgffConfig::new(2000 + i as u64, a, c, Category::ForkJoin),
            b,
        ));
    }
    for (i, &(a, b, c)) in cat2.iter().enumerate() {
        out.push((TgffConfig::new(3000 + i as u64, a, c, Category::Layered), b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TgffConfig::new(7, 20, 2, Category::ForkJoin);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.ctg, b.ctg);
        assert_eq!(a.probs, b.probs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TgffConfig::new(1, 20, 2, Category::ForkJoin).generate();
        let b = TgffConfig::new(2, 20, 2, Category::ForkJoin).generate();
        assert_ne!(a.ctg, b.ctg);
    }

    #[test]
    fn branch_count_is_exact_forkjoin() {
        for seed in 0..10 {
            for c in 0..4 {
                let g = TgffConfig::new(seed, 25, c, Category::ForkJoin).generate();
                assert_eq!(g.ctg.num_branches(), c, "seed {seed} c {c}");
            }
        }
    }

    #[test]
    fn branch_count_is_exact_layered() {
        for seed in 0..10 {
            for c in 0..4 {
                let g = TgffConfig::new(seed, 25, c, Category::Layered).generate();
                assert_eq!(g.ctg.num_branches(), c, "seed {seed} c {c}");
            }
        }
    }

    #[test]
    fn probs_validate_against_graph() {
        for seed in 0..5 {
            let g = TgffConfig::new(seed, 20, 2, Category::Layered).generate();
            assert!(g.probs.validate(&g.ctg).is_ok());
        }
    }

    #[test]
    fn layered_has_no_nested_branches() {
        // No branch fork node may be conditionally activated (nested branch).
        for seed in 0..10 {
            let g = TgffConfig::new(seed, 25, 3, Category::Layered).generate();
            let act = g.ctg.activation();
            for &b in g.ctg.branch_nodes() {
                assert!(
                    act.always_active(b),
                    "seed {seed}: branch {b} is nested (condition {})",
                    act.condition(b)
                );
            }
        }
    }

    #[test]
    fn forkjoin_often_nests_branches() {
        // With 3 fork sections and seeds 0..20 at least one graph must nest.
        let mut nested = false;
        for seed in 0..20 {
            let g = TgffConfig::new(seed, 30, 3, Category::ForkJoin).generate();
            let act = g.ctg.activation();
            nested |= g.ctg.branch_nodes().iter().any(|&b| !act.always_active(b));
        }
        assert!(nested, "fork-join family should produce nested branches");
    }

    #[test]
    fn paper_case_lists_have_expected_shapes() {
        let t1 = table1_cases();
        assert_eq!(t1.len(), 5);
        assert_eq!(t1[0].1, 3); // 3 PEs
        let t45 = table45_cases();
        assert_eq!(t45.len(), 10);
        assert!(matches!(t45[0].0.category, Category::ForkJoin));
        assert!(matches!(t45[9].0.category, Category::Layered));
        for (cfg, _) in &t45 {
            let g = cfg.generate();
            assert_eq!(g.ctg.num_branches(), cfg.num_branches);
        }
    }
}

#[cfg(test)]
mod kary_tests {
    use super::*;

    #[test]
    fn kary_forkjoin_generates_requested_arity() {
        for seed in 0..6 {
            let mut cfg = TgffConfig::new(seed, 25, 2, Category::ForkJoin);
            cfg.branch_alternatives = 3;
            let g = cfg.generate();
            assert_eq!(g.ctg.num_branches(), 2);
            for &b in g.ctg.branch_nodes() {
                assert_eq!(g.ctg.node(b).alternatives(), 3, "seed {seed}");
            }
            assert!(g.probs.validate(&g.ctg).is_ok());
        }
    }

    #[test]
    fn kary_layered_generates_requested_arity() {
        for seed in 0..6 {
            let mut cfg = TgffConfig::new(seed, 28, 2, Category::Layered);
            cfg.branch_alternatives = 3;
            let g = cfg.generate();
            assert_eq!(g.ctg.num_branches(), 2);
            for &b in g.ctg.branch_nodes() {
                assert_eq!(g.ctg.node(b).alternatives(), 3, "seed {seed}");
            }
        }
    }

    #[test]
    fn kary_graphs_schedule_end_to_end() {
        use ctg_model::DecisionVector;
        let mut cfg = TgffConfig::new(11, 25, 2, Category::ForkJoin);
        cfg.branch_alternatives = 3;
        let g = cfg.generate();
        let platform = cfg.generate_platform(&g.ctg, 3);
        // Downstream crates are dev-dependencies of tgff-gen's tests via the
        // workspace; exercise scheduling through the public facade used by
        // integration tests instead of here (kept to model-level checks).
        let act = g.ctg.activation();
        let scenarios = ctg_model::ScenarioSet::enumerate(&g.ctg, &act);
        assert!(scenarios.len() >= 3);
        // Every full decision vector yields a consistent active set.
        let v = DecisionVector::new(vec![2; g.ctg.num_branches()]);
        let active = v.active_tasks(&g.ctg, &act);
        assert!(active.iter().any(|&a| a));
        let _ = platform;
    }

    #[test]
    #[should_panic]
    fn degenerate_arity_rejected() {
        let mut cfg = TgffConfig::new(1, 25, 2, Category::ForkJoin);
        cfg.branch_alternatives = 1;
        let _ = cfg.generate();
    }
}
