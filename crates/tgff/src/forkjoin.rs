//! Category-1 generation: fork-join graphs with nested conditional branches.

use crate::TgffConfig;
use ctg_model::{Ctg, CtgBuilder, NodeKind, TaskId};
use ctg_rng::Rng64;

/// Generates a fork-join CTG.
///
/// Construction: starting from an entry task, `num_branches` conditional
/// sections (fork → two arm chains → or-join) are attached at random
/// extension points — attaching inside an existing arm produces a *nested*
/// conditional branch. The remaining task budget is spent on chain tasks at
/// random extension points, and all dangling ends are joined into a common
/// exit task, giving the fork-join shape.
pub(crate) fn generate(cfg: &TgffConfig, rng: &mut Rng64) -> Ctg {
    let mut b = CtgBuilder::new(format!("tgff-fj-{}", cfg.seed));
    let comm = |rng: &mut Rng64| rng.gen_range(cfg.comm_range.0..cfg.comm_range.1);

    let entry = b.add_task("entry");
    // Extension points: (task to append after, is the point inside a
    // conditional arm). Arms make nesting possible.
    let mut points: Vec<TaskId> = vec![entry];
    let mut used = 1usize;
    // Budget reserved for the joint exit task.
    let budget = cfg.num_tasks - 1;

    let arms = cfg.branch_alternatives;
    let section_min = arms as usize + 2;
    for section in 0..cfg.num_branches {
        let at = points[rng.gen_range(0..points.len())];
        let fork = b.add_task(format!("fork{section}"));
        let c = comm(rng);
        b.add_edge(at, fork, c).expect("extension point is valid");
        used += 1;
        // Arms: each a chain of 1..=4 tasks (budget permitting) — the
        // paper's branches "activate or deactivate a large set of
        // operations", so arms carry a meaningful share of the graph.
        let remaining_sections = cfg.num_branches - section - 1;
        let reserve = remaining_sections * section_min;
        let mut arm_ends = Vec::new();
        for alt in 0..arms {
            // Still needed after this arm's first task: the remaining arms'
            // minimum (1 task each) plus the join node.
            let needed_min = (arms - 1 - alt) as usize + 1;
            let spare = budget.saturating_sub(used + reserve + needed_min + 1);
            let len = 1 + rng.gen_range(0..=spare.min(3));
            let head = b.add_task(format!("arm{section}.{alt}.0"));
            b.add_cond_edge(fork, head, alt, comm(rng))
                .expect("fresh conditional edge");
            used += 1;
            let mut tail = head;
            for k in 1..len {
                let next = b.add_task(format!("arm{section}.{alt}.{k}"));
                b.add_edge(tail, next, comm(rng)).expect("fresh chain edge");
                used += 1;
                tail = next;
                points.push(tail); // interior of an arm: nesting point
            }
            points.push(tail);
            arm_ends.push(tail);
        }
        let join = b.add_task_with_kind(format!("join{section}"), NodeKind::Or);
        for end in arm_ends {
            b.add_edge(end, join, comm(rng)).expect("fresh join edge");
        }
        used += 1;
        points.push(join);
    }

    // Spend the rest of the budget on chain tasks.
    let mut filler = 0usize;
    while used < budget {
        let at = points[rng.gen_range(0..points.len())];
        let t = b.add_task(format!("task{filler}"));
        b.add_edge(at, t, comm(rng)).expect("fresh filler edge");
        points.push(t);
        used += 1;
        filler += 1;
    }

    // Join all dangling ends into a common exit (fork-join closure). A
    // *conditional* dangling end must meet the exit through an or-semantic;
    // making the exit an or-node handles every case uniformly.
    let ctg_probe = b.clone().deadline(1.0).build().expect("probe build");
    let sinks: Vec<TaskId> = ctg_probe.sinks().collect();
    let exit = b.add_task_with_kind("exit", NodeKind::Or);
    for s in sinks {
        b.add_edge(s, exit, comm(rng)).expect("fresh exit edge");
    }

    // Provisional, always-feasible deadline; callers rescale.
    let ctg = b
        .deadline(1.0)
        .build()
        .expect("construction yields a valid DAG");
    let safe_deadline = 10.0 * cfg.wcet_range.1 * ctg.num_tasks() as f64;
    ctg.with_deadline(safe_deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    fn gen(seed: u64, tasks: usize, branches: usize) -> Ctg {
        let cfg = TgffConfig::new(seed, tasks, branches, Category::ForkJoin);
        let mut rng = Rng64::seed_from_u64(seed);
        generate(&cfg, &mut rng)
    }

    #[test]
    fn single_exit_node() {
        for seed in 0..10 {
            let g = gen(seed, 20, 2);
            assert_eq!(g.sinks().count(), 1, "seed {seed}");
            assert_eq!(g.sources().count(), 1, "seed {seed}");
        }
    }

    #[test]
    fn task_count_close_to_budget() {
        for seed in 0..10 {
            let g = gen(seed, 25, 3);
            // Budget + exit node; construction may not undershoot.
            assert!(g.num_tasks() >= 25, "seed {seed}: {}", g.num_tasks());
            assert!(g.num_tasks() <= 27, "seed {seed}: {}", g.num_tasks());
        }
    }

    #[test]
    fn all_branch_arms_are_exclusive() {
        let g = gen(3, 25, 3);
        let act = g.activation();
        for &f in g.branch_nodes() {
            let arms: Vec<TaskId> = g
                .out_edges(f)
                .filter(|(_, e)| e.is_conditional())
                .map(|(_, e)| e.dst())
                .collect();
            for i in 0..arms.len() {
                for j in (i + 1)..arms.len() {
                    assert!(act.mutually_exclusive(arms[i], arms[j]));
                }
            }
        }
    }

    #[test]
    fn exit_executes_in_every_scenario() {
        // The exit's activation DNF may read `a1 ∨ a2` rather than the
        // literal "1", so check semantically over the scenario enumeration.
        for seed in 0..5 {
            let g = gen(seed, 25, 3);
            let act = g.activation();
            let scenarios = ctg_model::ScenarioSet::enumerate(&g, &act);
            let exit = g.sinks().next().unwrap();
            for s in scenarios.scenarios() {
                assert!(s.is_active(exit), "seed {seed}, scenario {}", s.cube());
            }
        }
    }
}
