//! Random heterogeneous platform generation.

use crate::TgffConfig;
use ctg_model::Ctg;
use ctg_rng::Rng64;
use mpsoc_platform::{Platform, PlatformBuilder};

/// Generates a fully connected heterogeneous platform for `ctg`.
///
/// Every task gets a base WCET from `cfg.wcet_range`; each PE multiplies it
/// by a per-(task, PE) heterogeneity factor. Nominal-voltage energy is
/// proportional to the per-PE WCET via a per-task energy factor, matching the
/// paper's unit-load-capacitance assumption (energy ~ cycles at `V_nom`).
pub(crate) fn generate(cfg: &TgffConfig, ctg: &Ctg, num_pes: usize, rng: &mut Rng64) -> Platform {
    let mut b = PlatformBuilder::new(ctg.num_tasks());
    for i in 0..num_pes {
        b.add_pe(format!("pe{i}"));
    }
    for t in 0..ctg.num_tasks() {
        let base = rng.gen_range(cfg.wcet_range.0..cfg.wcet_range.1);
        let e_factor = rng.gen_range(cfg.energy_factor_range.0..cfg.energy_factor_range.1);
        let mut wcet_row = Vec::with_capacity(num_pes);
        let mut energy_row = Vec::with_capacity(num_pes);
        for _ in 0..num_pes {
            let f = rng.gen_range(cfg.pe_factor_range.0..cfg.pe_factor_range.1);
            let w = base * f;
            wcet_row.push(w);
            energy_row.push(w * e_factor);
        }
        b.set_wcet_row(t, wcet_row).expect("valid generated WCETs");
        b.set_energy_row(t, energy_row)
            .expect("valid generated energies");
    }
    b.uniform_links(cfg.link_bandwidth, cfg.link_energy_per_kb)
        .expect("valid link parameters");
    b.build().expect("generated platform is complete")
}

#[cfg(test)]
mod tests {
    use crate::{Category, TgffConfig};

    #[test]
    fn platform_matches_graph_and_is_deterministic() {
        let cfg = TgffConfig::new(5, 20, 2, Category::ForkJoin);
        let g = cfg.generate();
        let p1 = cfg.generate_platform(&g.ctg, 4);
        let p2 = cfg.generate_platform(&g.ctg, 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.num_tasks(), g.ctg.num_tasks());
        assert_eq!(p1.num_pes(), 4);
    }

    #[test]
    fn wcet_heterogeneity_within_bounds() {
        let cfg = TgffConfig::new(6, 20, 2, Category::Layered);
        let g = cfg.generate();
        let p = cfg.generate_platform(&g.ctg, 3);
        for t in 0..p.num_tasks() {
            for pe in p.pes() {
                let w = p.profile().wcet(t, pe);
                assert!(w >= cfg.wcet_range.0 * cfg.pe_factor_range.0 - 1e-12);
                assert!(w <= cfg.wcet_range.1 * cfg.pe_factor_range.1 + 1e-12);
                assert!(p.profile().energy(t, pe) > 0.0);
            }
        }
    }

    #[test]
    fn all_pes_connected() {
        let cfg = TgffConfig::new(7, 20, 0, Category::ForkJoin);
        let g = cfg.generate();
        let p = cfg.generate_platform(&g.ctg, 3);
        for a in p.pes() {
            for b in p.pes() {
                assert!(p.comm().connected(a, b));
            }
        }
    }
}
