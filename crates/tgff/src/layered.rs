//! Category-2 generation: layered DAGs without fork-join structure or
//! nested conditional branches.

use crate::TgffConfig;
use ctg_model::{Ctg, CtgBuilder, TaskId};
use ctg_rng::Rng64;

/// Generates a layered CTG.
///
/// Tasks are distributed over layers; every task (beyond the first layer)
/// receives at least one predecessor from the previous layer plus random
/// extra edges. Branch fork nodes are drawn from tasks that are themselves
/// unconditionally activated and get exactly two conditional successors in
/// the next layer, each of which receives no other incoming edges — this
/// keeps conditional activation flat (no nesting) and well-defined.
pub(crate) fn generate(cfg: &TgffConfig, rng: &mut Rng64) -> Ctg {
    let n = cfg.num_tasks;
    let mut b = CtgBuilder::new(format!("tgff-lay-{}", cfg.seed));
    let comm = |rng: &mut Rng64| rng.gen_range(cfg.comm_range.0..cfg.comm_range.1);

    // Layer count: enough layers to host one fork per layer (plus the final
    // layer, which cannot host a fork), every layer ≥ 3 tasks so fork arms
    // always leave a connecting task. The budget precondition
    // (n ≥ 2 + 4·branches) guarantees this is satisfiable.
    let min_size = cfg.branch_alternatives as usize + 1;
    let min_layers = cfg.num_branches + 1;
    let num_layers = min_layers
        .max(n / 4)
        .max(1)
        .min((n / min_size).max(1))
        .max(min_layers);
    let base = n / num_layers;
    let rem = n % num_layers;
    assert!(
        cfg.num_branches == 0 || base >= min_size,
        "layer structure cannot host the requested branch count"
    );
    let mut layers: Vec<Vec<TaskId>> = Vec::new();
    for li in 0..num_layers {
        let want = base + usize::from(li < rem);
        let layer: Vec<TaskId> = (0..want)
            .map(|k| b.add_task(format!("l{li}t{k}")))
            .collect();
        layers.push(layer);
    }

    // Choose fork nodes: one per distinct layer (except the last), so their
    // conditional successors live in disjoint layers — no nesting by
    // construction when each fork is unconditionally activated.
    let usable_layers = layers.len() - 1;
    assert!(
        cfg.num_branches <= usable_layers,
        "not enough layers for the requested branch count"
    );
    // Fork layers: the first `num_branches` layers whose successor layer has
    // ≥ 3 tasks (2 for the arms + 1 to stay connected). The fork *task* is
    // picked during wiring so that it is never an arm (no nesting).
    let mut fork_of_layer: Vec<bool> = vec![false; layers.len()];
    let mut assigned = 0usize;
    for li in 0..usable_layers {
        if assigned == cfg.num_branches {
            break;
        }
        if layers[li + 1].len() >= 3 {
            fork_of_layer[li] = true;
            assigned += 1;
        }
    }
    assert_eq!(
        assigned, cfg.num_branches,
        "layer structure cannot host the requested branch count"
    );

    // Wire layers. `is_arm` marks tasks with a conditional in-edge; they are
    // never used as sources of further edges, keeping conditional activation
    // flat (no nesting) and every other task unconditionally active.
    let mut is_arm = vec![false; n];
    for li in 0..layers.len() - 1 {
        let (cur, next) = (&layers[li], &layers[li + 1]);
        let mut conditional_targets: Vec<TaskId> = Vec::new();
        if fork_of_layer[li] {
            let candidates: Vec<TaskId> = cur
                .iter()
                .copied()
                .filter(|&c| !is_arm[c.index()])
                .collect();
            assert!(!candidates.is_empty(), "a layer always has a non-arm task");
            let fork = candidates[rng.gen_range(0..candidates.len())];
            // Arms: the first `alts` tasks of the next layer.
            let alts = (cfg.branch_alternatives as usize).min(next.len() - 1);
            assert!(
                alts >= 2,
                "layer structure cannot host the requested branch arity"
            );
            for (alt, &target) in next.iter().take(alts).enumerate() {
                b.add_cond_edge(fork, target, alt as u8, comm(rng))
                    .expect("fresh conditional edge");
                conditional_targets.push(target);
                is_arm[target.index()] = true;
            }
        }
        for &t in next {
            if conditional_targets.contains(&t) {
                continue; // exactly one (conditional) predecessor
            }
            // At least one unconditional predecessor that is itself
            // unconditionally active: prefer non-arm tasks of this layer.
            let safe: Vec<TaskId> = cur
                .iter()
                .copied()
                .filter(|&c| !is_arm[c.index()])
                .collect();
            let pool = if safe.is_empty() { cur.clone() } else { safe };
            let p = pool[rng.gen_range(0..pool.len())];
            b.add_edge(p, t, comm(rng)).expect("fresh layer edge");
            // Extra random edges for irregularity.
            for &extra in cur {
                if extra != p && !is_arm[extra.index()] && rng.gen_bool(0.25) {
                    let _ = b.add_edge(extra, t, comm(rng));
                }
            }
        }
    }

    let ctg = b
        .deadline(1.0)
        .build()
        .expect("layered construction yields a valid DAG");
    let safe_deadline = 10.0 * cfg.wcet_range.1 * ctg.num_tasks() as f64;
    ctg.with_deadline(safe_deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    fn gen(seed: u64, tasks: usize, branches: usize) -> Ctg {
        let cfg = TgffConfig::new(seed, tasks, branches, Category::Layered);
        let mut rng = Rng64::seed_from_u64(seed);
        generate(&cfg, &mut rng)
    }

    #[test]
    fn exact_task_count() {
        for seed in 0..10 {
            let g = gen(seed, 25, 3);
            assert_eq!(g.num_tasks(), 25);
        }
    }

    #[test]
    fn conditional_tasks_have_single_predecessor() {
        for seed in 0..10 {
            let g = gen(seed, 25, 3);
            for t in g.tasks() {
                let cond_in = g.in_edges(t).filter(|(_, e)| e.is_conditional()).count();
                if cond_in > 0 {
                    assert_eq!(g.in_edges(t).count(), 1, "seed {seed} task {t}");
                }
            }
        }
    }

    #[test]
    fn every_non_first_layer_task_has_a_predecessor() {
        let g = gen(4, 25, 2);
        let roots: Vec<_> = g.sources().collect();
        // All roots live in the first layer (names start with l0).
        for r in roots {
            assert!(g.node(r).name().starts_with("l0"), "{}", g.node(r).name());
        }
    }
}
