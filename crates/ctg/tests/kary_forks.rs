//! The model supports k-ary branch fork nodes (more than two alternatives),
//! even though the paper's workloads are binary. These tests exercise a
//! 3-way fork end to end at the model level.

use ctg_model::{BranchProbs, Ctg, CtgBuilder, DecisionVector, ScenarioSet, TaskId};

/// mode-selector fork with three alternatives, each its own handler chain.
fn three_way() -> (Ctg, TaskId, [TaskId; 3]) {
    let mut b = CtgBuilder::new("3way");
    let src = b.add_task("src");
    let sel = b.add_task("select");
    let h0 = b.add_task("h0");
    let h1 = b.add_task("h1");
    let h2 = b.add_task("h2");
    let join = b.add_task_with_kind("join", ctg_model::NodeKind::Or);
    b.add_edge(src, sel, 0.1).unwrap();
    b.add_cond_edge(sel, h0, 0, 1.0).unwrap();
    b.add_cond_edge(sel, h1, 1, 1.0).unwrap();
    b.add_cond_edge(sel, h2, 2, 1.0).unwrap();
    for h in [h0, h1, h2] {
        b.add_edge(h, join, 0.5).unwrap();
    }
    (b.deadline(50.0).build().unwrap(), sel, [h0, h1, h2])
}

#[test]
fn three_alternatives_are_recognized() {
    let (g, sel, _) = three_way();
    assert_eq!(g.node(sel).alternatives(), 3);
    assert_eq!(g.num_branches(), 1);
}

#[test]
fn handlers_are_pairwise_exclusive() {
    let (g, _, [h0, h1, h2]) = three_way();
    let act = g.activation();
    assert!(act.mutually_exclusive(h0, h1));
    assert!(act.mutually_exclusive(h1, h2));
    assert!(act.mutually_exclusive(h0, h2));
}

#[test]
fn three_scenarios_with_correct_probabilities() {
    let (g, sel, [h0, h1, h2]) = three_way();
    let act = g.activation();
    let scenarios = ScenarioSet::enumerate(&g, &act);
    assert_eq!(scenarios.len(), 3);
    let mut probs = BranchProbs::new();
    probs.set(sel, vec![0.5, 0.3, 0.2]).unwrap();
    assert!(probs.validate(&g).is_ok());
    assert!((scenarios.task_prob(h0, &probs) - 0.5).abs() < 1e-12);
    assert!((scenarios.task_prob(h1, &probs) - 0.3).abs() < 1e-12);
    assert!((scenarios.task_prob(h2, &probs) - 0.2).abs() < 1e-12);
}

#[test]
fn decision_vectors_select_one_handler() {
    let (g, _, handlers) = three_way();
    let act = g.activation();
    for alt in 0..3u8 {
        let v = DecisionVector::new(vec![alt]);
        let active = v.active_tasks(&g, &act);
        for (k, &h) in handlers.iter().enumerate() {
            assert_eq!(active[h.index()], k == alt as usize);
        }
    }
}

#[test]
fn wrong_arity_distribution_rejected() {
    let (g, sel, _) = three_way();
    let mut probs = BranchProbs::new();
    probs.set(sel, vec![0.5, 0.5]).unwrap();
    assert!(probs.validate(&g).is_err());
}
