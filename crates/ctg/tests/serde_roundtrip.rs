//! Serde round-trip tests: CTGs, probability tables and decision vectors
//! survive serialization (C-SERDE).

use ctg_model::{BranchProbs, Ctg, CtgBuilder, DecisionVector, NodeKind};

fn sample_ctg() -> Ctg {
    let mut b = CtgBuilder::new("roundtrip");
    let s = b.add_task("s");
    let f = b.add_task("fork");
    let x = b.add_task("x");
    let y = b.add_task("y");
    let j = b.add_task_with_kind("join", NodeKind::Or);
    b.add_edge(s, f, 1.25).unwrap();
    b.add_cond_edge(f, x, 0, 2.5).unwrap();
    b.add_cond_edge(f, y, 1, 0.75).unwrap();
    b.add_edge(x, j, 1.0).unwrap();
    b.add_edge(y, j, 1.0).unwrap();
    b.deadline(42.5).build().unwrap()
}

#[test]
fn ctg_roundtrips_through_json() {
    let ctg = sample_ctg();
    let json = serde_json::to_string(&ctg).unwrap();
    let back: Ctg = serde_json::from_str(&json).unwrap();
    assert_eq!(ctg, back);
    // Derived structures survive too.
    assert_eq!(back.deadline(), 42.5);
    assert_eq!(back.branch_nodes(), ctg.branch_nodes());
    let act_a = ctg.activation();
    let act_b = back.activation();
    for t in ctg.tasks() {
        assert_eq!(act_a.condition(t), act_b.condition(t));
    }
}

#[test]
fn branch_probs_roundtrip() {
    let ctg = sample_ctg();
    let mut probs = BranchProbs::uniform(&ctg);
    let fork = ctg.branch_nodes()[0];
    probs.set(fork, vec![0.3, 0.7]).unwrap();
    let json = serde_json::to_string(&probs).unwrap();
    let back: BranchProbs = serde_json::from_str(&json).unwrap();
    assert_eq!(probs, back);
    assert!(back.validate(&ctg).is_ok());
}

#[test]
fn decision_vector_roundtrip() {
    let v = DecisionVector::new(vec![0, 1, 1, 0]);
    let json = serde_json::to_string(&v).unwrap();
    let back: DecisionVector = serde_json::from_str(&json).unwrap();
    assert_eq!(v, back);
}

#[test]
fn condition_types_roundtrip() {
    use ctg_model::{Cube, Dnf, Literal, TaskId};
    let lit = Literal::new(TaskId::new(3), 1);
    let cube = Cube::from_literals([lit, Literal::new(TaskId::new(5), 0)]).unwrap();
    let dnf = Dnf::from_cubes([cube.clone(), Cube::top()]);
    let back: Dnf = serde_json::from_str(&serde_json::to_string(&dnf).unwrap()).unwrap();
    assert_eq!(dnf, back);
    let back_cube: Cube =
        serde_json::from_str(&serde_json::to_string(&cube).unwrap()).unwrap();
    assert_eq!(cube, back_cube);
}
