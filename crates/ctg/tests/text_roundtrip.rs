//! Round-trip tests through the text format: CTGs survive export + re-parse
//! with all derived structures intact (C-SERDE).

use ctg_model::{text, Ctg, CtgBuilder, NodeKind};

fn sample_ctg() -> Ctg {
    let mut b = CtgBuilder::new("roundtrip");
    let s = b.add_task("s");
    let f = b.add_task("fork");
    let x = b.add_task("x");
    let y = b.add_task("y");
    let j = b.add_task_with_kind("join", NodeKind::Or);
    b.add_edge(s, f, 1.25).unwrap();
    b.add_cond_edge(f, x, 0, 2.5).unwrap();
    b.add_cond_edge(f, y, 1, 0.75).unwrap();
    b.add_edge(x, j, 1.0).unwrap();
    b.add_edge(y, j, 1.0).unwrap();
    b.deadline(42.5).build().unwrap()
}

#[test]
fn ctg_roundtrips_through_text() {
    let ctg = sample_ctg();
    let txt = text::to_text(&ctg);
    let back = text::from_text(&txt).unwrap();
    assert_eq!(ctg, back);
    // Derived structures survive too.
    assert_eq!(back.deadline(), 42.5);
    assert_eq!(back.branch_nodes(), ctg.branch_nodes());
    let act_a = ctg.activation();
    let act_b = back.activation();
    for t in ctg.tasks() {
        assert_eq!(act_a.condition(t), act_b.condition(t));
    }
}

#[test]
fn roundtrip_is_stable() {
    // to_text ∘ from_text is the identity on the textual form.
    let ctg = sample_ctg();
    let txt = text::to_text(&ctg);
    let again = text::to_text(&text::from_text(&txt).unwrap());
    assert_eq!(txt, again);
}

#[test]
fn random_graphs_roundtrip() {
    use ctg_rng::Rng64;
    // Randomized structural fuzz: any graph the builder accepts must
    // round-trip exactly.
    for seed in 0..20u64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut b = CtgBuilder::new(format!("fuzz{seed}"));
        let n = rng.gen_range(4..12usize);
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                if rng.gen_bool(0.2) {
                    b.add_task_with_kind(format!("t{i}"), NodeKind::Or)
                } else {
                    b.add_task(format!("t{i}"))
                }
            })
            .collect();
        // Forward chain plus random extra forward edges keeps it acyclic.
        for w in tasks.windows(2) {
            let _ = b.add_edge(w[0], w[1], rng.gen_range(0.0..4.0));
        }
        for _ in 0..n {
            let i = rng.gen_range(0..n - 1);
            let j = rng.gen_range(i + 1..n);
            let _ = b.add_edge(tasks[i], tasks[j], rng.gen_range(0.0..4.0));
        }
        if let Ok(ctg) = b.deadline(rng.gen_range(10.0..500.0)).build() {
            let back = text::from_text(&text::to_text(&ctg)).unwrap();
            assert_eq!(ctg, back, "seed {seed}");
        }
    }
}
