//! Property-based tests of the condition algebra.

use ctg_model::{Cube, Dnf, Literal, TaskId};
use proptest::prelude::*;

fn arb_literal() -> impl Strategy<Value = Literal> {
    (0usize..6, 0u8..3).prop_map(|(b, a)| Literal::new(TaskId::new(b), a))
}

fn arb_cube() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(arb_literal(), 0..5).prop_map(|lits| {
        // Build ignoring contradictions: later literals on the same branch
        // are dropped by `with` returning None; fall back to skipping them.
        let mut cube = Cube::top();
        for l in lits {
            if let Some(next) = cube.with(l) {
                cube = next;
            }
        }
        cube
    })
}

fn arb_dnf() -> impl Strategy<Value = Dnf> {
    proptest::collection::vec(arb_cube(), 0..5).prop_map(Dnf::from_cubes)
}

/// An arbitrary complete assignment for branches 0..6 with 3 alternatives.
fn arb_assignment() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..3, 6)
}

fn eval_cube(c: &Cube, assign: &[u8]) -> bool {
    c.eval(|b| assign.get(b.index()).copied())
}

fn eval_dnf(d: &Dnf, assign: &[u8]) -> bool {
    d.eval(|b| assign.get(b.index()).copied())
}

proptest! {
    /// Cube conjunction is the logical AND under every assignment.
    #[test]
    fn cube_and_is_logical_and(a in arb_cube(), b in arb_cube(), assign in arb_assignment()) {
        match a.and(&b) {
            Some(c) => prop_assert_eq!(
                eval_cube(&c, &assign),
                eval_cube(&a, &assign) && eval_cube(&b, &assign)
            ),
            None => prop_assert!(!(eval_cube(&a, &assign) && eval_cube(&b, &assign))),
        }
    }

    /// `implies` is sound: if a ⇒ b then every model of a models b.
    #[test]
    fn implies_is_sound(a in arb_cube(), b in arb_cube(), assign in arb_assignment()) {
        if a.implies(&b) && eval_cube(&a, &assign) {
            prop_assert!(eval_cube(&b, &assign));
        }
    }

    /// DNF disjunction/conjunction match logical OR/AND.
    #[test]
    fn dnf_ops_are_logical(x in arb_dnf(), y in arb_dnf(), assign in arb_assignment()) {
        prop_assert_eq!(
            eval_dnf(&x.or(&y), &assign),
            eval_dnf(&x, &assign) || eval_dnf(&y, &assign)
        );
        prop_assert_eq!(
            eval_dnf(&x.and(&y), &assign),
            eval_dnf(&x, &assign) && eval_dnf(&y, &assign)
        );
    }

    /// Simplification preserves semantics.
    #[test]
    fn simplify_preserves_semantics(x in arb_dnf(), assign in arb_assignment()) {
        prop_assert_eq!(eval_dnf(&x.simplified(), &assign), eval_dnf(&x, &assign));
    }

    /// Disjointness is sound: disjoint DNFs are never both true.
    #[test]
    fn disjoint_is_sound(x in arb_dnf(), y in arb_dnf(), assign in arb_assignment()) {
        if x.disjoint(&y) {
            prop_assert!(!(eval_dnf(&x, &assign) && eval_dnf(&y, &assign)));
        }
    }

    /// `and` with top is identity; with a contradiction it is false.
    #[test]
    fn dnf_identities(x in arb_dnf(), assign in arb_assignment()) {
        prop_assert_eq!(eval_dnf(&x.and(&Dnf::top()), &assign), eval_dnf(&x, &assign));
        prop_assert!(!eval_dnf(&x.and(&Dnf::false_()), &assign));
    }

    /// Cube conjunction is commutative and associative (as far as defined).
    #[test]
    fn cube_and_commutative(a in arb_cube(), b in arb_cube()) {
        prop_assert_eq!(a.and(&b), b.and(&a));
    }
}
