//! Randomized property tests of the condition algebra (seeded, offline —
//! no proptest dependency; each property is checked over a few thousand
//! random cases drawn from `ctg-rng`).

use ctg_model::{Cube, Dnf, Literal, TaskId};
use ctg_rng::Rng64;

const CASES: usize = 2000;

fn arb_literal(rng: &mut Rng64) -> Literal {
    Literal::new(
        TaskId::new(rng.gen_range(0..6usize)),
        rng.gen_range(0..3usize) as u8,
    )
}

fn arb_cube(rng: &mut Rng64) -> Cube {
    // Build ignoring contradictions: later literals on the same branch are
    // dropped by `with` returning None; fall back to skipping them.
    let mut cube = Cube::top();
    for _ in 0..rng.gen_range(0..5usize) {
        let l = arb_literal(rng);
        if let Some(next) = cube.with(l) {
            cube = next;
        }
    }
    cube
}

fn arb_dnf(rng: &mut Rng64) -> Dnf {
    let cubes: Vec<Cube> = (0..rng.gen_range(0..5usize))
        .map(|_| arb_cube(rng))
        .collect();
    Dnf::from_cubes(cubes)
}

/// An arbitrary complete assignment for branches 0..6 with 3 alternatives.
fn arb_assignment(rng: &mut Rng64) -> Vec<u8> {
    (0..6).map(|_| rng.gen_range(0..3usize) as u8).collect()
}

fn eval_cube(c: &Cube, assign: &[u8]) -> bool {
    c.eval(|b| assign.get(b.index()).copied())
}

fn eval_dnf(d: &Dnf, assign: &[u8]) -> bool {
    d.eval(|b| assign.get(b.index()).copied())
}

/// Cube conjunction is the logical AND under every assignment.
#[test]
fn cube_and_is_logical_and() {
    let mut rng = Rng64::seed_from_u64(0xC0FE_0001);
    for _ in 0..CASES {
        let (a, b, assign) = (
            arb_cube(&mut rng),
            arb_cube(&mut rng),
            arb_assignment(&mut rng),
        );
        match a.and(&b) {
            Some(c) => assert_eq!(
                eval_cube(&c, &assign),
                eval_cube(&a, &assign) && eval_cube(&b, &assign),
                "a={a:?} b={b:?} assign={assign:?}"
            ),
            None => assert!(!(eval_cube(&a, &assign) && eval_cube(&b, &assign))),
        }
    }
}

/// `implies` is sound: if a ⇒ b then every model of a models b.
#[test]
fn implies_is_sound() {
    let mut rng = Rng64::seed_from_u64(0xC0FE_0002);
    for _ in 0..CASES {
        let (a, b, assign) = (
            arb_cube(&mut rng),
            arb_cube(&mut rng),
            arb_assignment(&mut rng),
        );
        if a.implies(&b) && eval_cube(&a, &assign) {
            assert!(eval_cube(&b, &assign), "a={a:?} b={b:?} assign={assign:?}");
        }
    }
}

/// DNF disjunction/conjunction match logical OR/AND.
#[test]
fn dnf_ops_are_logical() {
    let mut rng = Rng64::seed_from_u64(0xC0FE_0003);
    for _ in 0..CASES {
        let (x, y, assign) = (
            arb_dnf(&mut rng),
            arb_dnf(&mut rng),
            arb_assignment(&mut rng),
        );
        assert_eq!(
            eval_dnf(&x.or(&y), &assign),
            eval_dnf(&x, &assign) || eval_dnf(&y, &assign)
        );
        assert_eq!(
            eval_dnf(&x.and(&y), &assign),
            eval_dnf(&x, &assign) && eval_dnf(&y, &assign)
        );
    }
}

/// Simplification preserves semantics.
#[test]
fn simplify_preserves_semantics() {
    let mut rng = Rng64::seed_from_u64(0xC0FE_0004);
    for _ in 0..CASES {
        let (x, assign) = (arb_dnf(&mut rng), arb_assignment(&mut rng));
        assert_eq!(
            eval_dnf(&x.simplified(), &assign),
            eval_dnf(&x, &assign),
            "x={x:?} assign={assign:?}"
        );
    }
}

/// Disjointness is sound: disjoint DNFs are never both true.
#[test]
fn disjoint_is_sound() {
    let mut rng = Rng64::seed_from_u64(0xC0FE_0005);
    for _ in 0..CASES {
        let (x, y, assign) = (
            arb_dnf(&mut rng),
            arb_dnf(&mut rng),
            arb_assignment(&mut rng),
        );
        if x.disjoint(&y) {
            assert!(
                !(eval_dnf(&x, &assign) && eval_dnf(&y, &assign)),
                "x={x:?} y={y:?} assign={assign:?}"
            );
        }
    }
}

/// `and` with top is identity; with a contradiction it is false.
#[test]
fn dnf_identities() {
    let mut rng = Rng64::seed_from_u64(0xC0FE_0006);
    for _ in 0..CASES {
        let (x, assign) = (arb_dnf(&mut rng), arb_assignment(&mut rng));
        assert_eq!(
            eval_dnf(&x.and(&Dnf::top()), &assign),
            eval_dnf(&x, &assign)
        );
        assert!(!eval_dnf(&x.and(&Dnf::false_()), &assign));
    }
}

/// Cube conjunction is commutative (as far as defined).
#[test]
fn cube_and_commutative() {
    let mut rng = Rng64::seed_from_u64(0xC0FE_0007);
    for _ in 0..CASES {
        let (a, b) = (arb_cube(&mut rng), arb_cube(&mut rng));
        assert_eq!(a.and(&b), b.and(&a), "a={a:?} b={b:?}");
    }
}
