//! The conditional task graph structure.

use crate::activation::Activation;
use crate::id::{EdgeId, TaskId};
use std::fmt;

/// Activation semantics of a node (paper §II).
///
/// * An [`NodeKind::And`] node is activated when **all** its predecessors have
///   completed and the conditions of the corresponding edges are satisfied.
/// * An [`NodeKind::Or`] node is activated when **one or more** predecessors
///   have completed and the conditions of the corresponding edges hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeKind {
    /// Conjunctive activation (default).
    #[default]
    And,
    /// Disjunctive activation.
    Or,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::And => write!(f, "and"),
            NodeKind::Or => write!(f, "or"),
        }
    }
}

/// A task vertex of the CTG.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    /// Number of conditional alternatives if this is a branch fork node
    /// (derived from the outgoing conditional edges), 0 otherwise.
    pub(crate) alternatives: u8,
}

impl Node {
    /// The human-readable name of the task.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Activation semantics of the task.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Number of branch alternatives (0 when the task is not a fork node).
    pub fn alternatives(&self) -> u8 {
        self.alternatives
    }

    /// Whether the task is a branch fork node.
    pub fn is_branch(&self) -> bool {
        self.alternatives > 0
    }
}

/// A precedence/data-dependency edge of the CTG.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub(crate) src: TaskId,
    pub(crate) dst: TaskId,
    /// `Some(alt)` when the edge is conditional on the source fork node
    /// selecting alternative `alt`; `None` for unconditional edges.
    pub(crate) condition: Option<u8>,
    /// Communication volume in Kbytes (paper: `Comm(τi, τj)`).
    pub(crate) comm_kbytes: f64,
}

impl Edge {
    /// Source task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// Destination task.
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// The guarding alternative of the source fork node, if conditional.
    pub fn condition(&self) -> Option<u8> {
        self.condition
    }

    /// Communication volume carried by the edge, in Kbytes.
    pub fn comm_kbytes(&self) -> f64 {
        self.comm_kbytes
    }

    /// Whether the edge is guarded by a branch condition.
    pub fn is_conditional(&self) -> bool {
        self.condition.is_some()
    }
}

/// A validated conditional task graph.
///
/// Construct with [`CtgBuilder`](crate::CtgBuilder); a built graph is
/// immutable, acyclic, and has consistent branch alternatives. A common
/// period/deadline applies to the entire graph (paper §II).
#[derive(Debug, Clone, PartialEq)]
pub struct Ctg {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) succ: Vec<Vec<EdgeId>>,
    pub(crate) pred: Vec<Vec<EdgeId>>,
    pub(crate) topo: Vec<TaskId>,
    pub(crate) branch_nodes: Vec<TaskId>,
    pub(crate) deadline: f64,
}

impl Ctg {
    /// The name of the graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Common deadline (= period) of the graph, in time units.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// All task ids in index order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.nodes.len()).map(TaskId::new)
    }

    /// The node payload of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to this graph.
    pub fn node(&self, task: TaskId) -> &Node {
        &self.nodes[task.index()]
    }

    /// The edge payload of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to this graph.
    pub fn edge(&self, edge: EdgeId) -> &Edge {
        &self.edges[edge.index()]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), e))
    }

    /// Outgoing edges of `task`.
    pub fn out_edges(&self, task: TaskId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.succ[task.index()]
            .iter()
            .map(move |&e| (e, &self.edges[e.index()]))
    }

    /// Incoming edges of `task`.
    pub fn in_edges(&self, task: TaskId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.pred[task.index()]
            .iter()
            .map(move |&e| (e, &self.edges[e.index()]))
    }

    /// Successor tasks of `task`.
    pub fn successors(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.out_edges(task).map(|(_, e)| e.dst)
    }

    /// Predecessor tasks of `task`.
    pub fn predecessors(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.in_edges(task).map(|(_, e)| e.src)
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(|t| self.pred[t.index()].is_empty())
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(|t| self.succ[t.index()].is_empty())
    }

    /// Task ids in a topological order (computed at build time).
    pub fn topological(&self) -> &[TaskId] {
        &self.topo
    }

    /// Branch fork nodes in topological order.
    ///
    /// The position of a fork node in this slice is its index in a
    /// [`DecisionVector`](crate::DecisionVector).
    pub fn branch_nodes(&self) -> &[TaskId] {
        &self.branch_nodes
    }

    /// Number of branch fork nodes.
    pub fn num_branches(&self) -> usize {
        self.branch_nodes.len()
    }

    /// Index of `branch` within [`Ctg::branch_nodes`], if it is a fork node.
    pub fn branch_index(&self, branch: TaskId) -> Option<usize> {
        self.branch_nodes.iter().position(|&b| b == branch)
    }

    /// Runs the activation analysis for this graph (computes `X(τ)`, `Γ(τ)`,
    /// scenario structure and implied or-node dependencies).
    ///
    /// The analysis is recomputed on each call; cache the result when used in
    /// a loop.
    pub fn activation(&self) -> Activation {
        Activation::analyze(self)
    }

    /// Returns a copy of the graph with a different deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not strictly positive and finite.
    pub fn with_deadline(&self, deadline: f64) -> Ctg {
        assert!(
            deadline.is_finite() && deadline > 0.0,
            "deadline must be positive and finite"
        );
        let mut g = self.clone();
        g.deadline = deadline;
        g
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CtgBuilder;
    use crate::graph::NodeKind;

    #[test]
    fn accessors_cover_basic_shape() {
        let mut b = CtgBuilder::new("g");
        let t0 = b.add_task("a");
        let t1 = b.add_task("b");
        let t2 = b.add_task_with_kind("c", NodeKind::Or);
        b.add_edge(t0, t1, 2.0).unwrap();
        b.add_edge(t1, t2, 3.0).unwrap();
        let g = b.deadline(10.0).build().unwrap();

        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.node(t2).kind(), NodeKind::Or);
        assert_eq!(g.node(t0).name(), "a");
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![t0]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![t2]);
        assert_eq!(g.successors(t0).collect::<Vec<_>>(), vec![t1]);
        assert_eq!(g.predecessors(t2).collect::<Vec<_>>(), vec![t1]);
        assert_eq!(g.deadline(), 10.0);
        assert!(g.branch_nodes().is_empty());
    }

    #[test]
    fn branch_metadata_derived_from_edges() {
        let mut b = CtgBuilder::new("g");
        let f = b.add_task("fork");
        let x = b.add_task("x");
        let y = b.add_task("y");
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        b.add_cond_edge(f, y, 1, 0.0).unwrap();
        let g = b.deadline(5.0).build().unwrap();
        assert!(g.node(f).is_branch());
        assert_eq!(g.node(f).alternatives(), 2);
        assert_eq!(g.branch_nodes(), &[f]);
        assert_eq!(g.branch_index(f), Some(0));
        assert_eq!(g.branch_index(x), None);
    }

    #[test]
    fn with_deadline_replaces_deadline() {
        let mut b = CtgBuilder::new("g");
        let _ = b.add_task("a");
        let g = b.deadline(5.0).build().unwrap();
        assert_eq!(g.with_deadline(7.5).deadline(), 7.5);
    }

    #[test]
    #[should_panic]
    fn with_deadline_rejects_nonpositive() {
        let mut b = CtgBuilder::new("g");
        let _ = b.add_task("a");
        let g = b.deadline(5.0).build().unwrap();
        let _ = g.with_deadline(0.0);
    }
}
