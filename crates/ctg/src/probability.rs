//! Branch-selection probability tables.

use crate::error::ProbError;
use crate::graph::Ctg;
use crate::id::TaskId;
use std::collections::BTreeMap;
use std::fmt;

const DIST_TOL: f64 = 1e-6;

/// Per-branch probability distributions over alternatives — the paper's
/// `prob(e)` for each conditional edge, grouped by fork node.
///
/// A table is validated against a specific graph shape with
/// [`BranchProbs::validate`]; the scheduler treats it as the current belief
/// about the workload and the adaptive manager re-estimates it online.
///
/// ```
/// use ctg_model::{BranchProbs, CtgBuilder};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CtgBuilder::new("g");
/// let f = b.add_task("fork");
/// let x = b.add_task("x");
/// let y = b.add_task("y");
/// b.add_cond_edge(f, x, 0, 0.0)?;
/// b.add_cond_edge(f, y, 1, 0.0)?;
/// let g = b.deadline(1.0).build()?;
///
/// let mut probs = BranchProbs::new();
/// probs.set(f, vec![0.3, 0.7])?;
/// probs.validate(&g)?;
/// assert!((probs.prob(f, 1) - 0.7).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BranchProbs {
    table: BTreeMap<TaskId, Vec<f64>>,
}

impl BranchProbs {
    /// Creates an empty table.
    pub fn new() -> Self {
        BranchProbs::default()
    }

    /// Builds a table assigning the uniform distribution to every branch
    /// fork node of `ctg`.
    pub fn uniform(ctg: &Ctg) -> Self {
        let mut probs = BranchProbs::new();
        for &b in ctg.branch_nodes() {
            let k = ctg.node(b).alternatives() as usize;
            probs.table.insert(b, vec![1.0 / k as f64; k]);
        }
        probs
    }

    /// Sets the distribution of `branch` over its alternatives.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidDistribution`] when the vector contains a
    /// negative or non-finite entry or does not sum to 1 (within 1e-6).
    pub fn set(&mut self, branch: TaskId, probs: Vec<f64>) -> Result<(), ProbError> {
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0)
            || (probs.iter().sum::<f64>() - 1.0).abs() > DIST_TOL
            || probs.len() < 2
        {
            return Err(ProbError::InvalidDistribution(branch));
        }
        self.table.insert(branch, probs);
        Ok(())
    }

    /// The probability that `branch` selects alternative `alt`.
    ///
    /// Unknown branches or alternatives yield probability 0.
    pub fn prob(&self, branch: TaskId, alt: u8) -> f64 {
        self.table
            .get(&branch)
            .and_then(|v| v.get(alt as usize))
            .copied()
            .unwrap_or(0.0)
    }

    /// The full distribution for `branch`, if present.
    pub fn distribution(&self, branch: TaskId) -> Option<&[f64]> {
        self.table.get(&branch).map(Vec::as_slice)
    }

    /// Branches present in the table.
    pub fn branches(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.table.keys().copied()
    }

    /// Checks that the table matches the branch structure of `ctg`: every
    /// fork node has a distribution of the right arity and no spurious
    /// entries exist.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found.
    pub fn validate(&self, ctg: &Ctg) -> Result<(), ProbError> {
        for &b in ctg.branch_nodes() {
            let expected = ctg.node(b).alternatives() as usize;
            match self.table.get(&b) {
                None => return Err(ProbError::MissingBranch(b)),
                Some(v) if v.len() != expected => {
                    return Err(ProbError::WrongArity {
                        branch: b,
                        expected,
                        got: v.len(),
                    })
                }
                Some(_) => {}
            }
        }
        for &b in self.table.keys() {
            if ctg.branch_index(b).is_none() {
                return Err(ProbError::NotABranch(b));
            }
        }
        Ok(())
    }

    /// Largest absolute per-alternative difference to another table, over the
    /// union of branches.
    ///
    /// This is the drift measure compared against the adaptation threshold in
    /// the paper's window-based algorithm.
    pub fn max_abs_diff(&self, other: &BranchProbs) -> f64 {
        let mut max: f64 = 0.0;
        for (b, v) in &self.table {
            match other.table.get(b) {
                Some(w) => {
                    for (i, p) in v.iter().enumerate() {
                        let q = w.get(i).copied().unwrap_or(0.0);
                        max = max.max((p - q).abs());
                    }
                }
                None => max = 1.0_f64.max(max),
            }
        }
        for (b, w) in &other.table {
            if !self.table.contains_key(b) {
                max = max.max(w.iter().cloned().fold(0.0, f64::max));
            }
        }
        max
    }
}

impl fmt::Display for BranchProbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (b, v) in &self.table {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{b}: [")?;
            for (i, p) in v.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p:.3}")?;
            }
            write!(f, "]")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;

    fn fork_graph() -> (Ctg, TaskId) {
        let mut b = CtgBuilder::new("g");
        let f = b.add_task("f");
        let x = b.add_task("x");
        let y = b.add_task("y");
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        b.add_cond_edge(f, y, 1, 0.0).unwrap();
        (b.deadline(1.0).build().unwrap(), f)
    }

    #[test]
    fn uniform_matches_graph() {
        let (g, f) = fork_graph();
        let p = BranchProbs::uniform(&g);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.prob(f, 0), 0.5);
        assert_eq!(p.prob(f, 1), 0.5);
    }

    #[test]
    fn set_rejects_bad_distributions() {
        let (_, f) = fork_graph();
        let mut p = BranchProbs::new();
        assert!(p.set(f, vec![0.5, 0.6]).is_err());
        assert!(p.set(f, vec![-0.1, 1.1]).is_err());
        assert!(p.set(f, vec![1.0]).is_err());
        assert!(p.set(f, vec![0.25, 0.75]).is_ok());
    }

    #[test]
    fn validate_catches_missing_and_spurious() {
        let (g, f) = fork_graph();
        let p = BranchProbs::new();
        assert_eq!(p.validate(&g), Err(ProbError::MissingBranch(f)));

        let mut p = BranchProbs::new();
        p.set(f, vec![0.5, 0.5]).unwrap();
        p.set(TaskId::new(1), vec![0.5, 0.5]).unwrap();
        assert_eq!(p.validate(&g), Err(ProbError::NotABranch(TaskId::new(1))));
    }

    #[test]
    fn validate_catches_wrong_arity() {
        let (g, f) = fork_graph();
        let mut p = BranchProbs::new();
        p.set(f, vec![0.2, 0.3, 0.5]).unwrap();
        assert_eq!(
            p.validate(&g),
            Err(ProbError::WrongArity {
                branch: f,
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn unknown_branch_prob_is_zero() {
        let p = BranchProbs::new();
        assert_eq!(p.prob(TaskId::new(0), 0), 0.0);
    }

    #[test]
    fn max_abs_diff_measures_drift() {
        let (_, f) = fork_graph();
        let mut a = BranchProbs::new();
        a.set(f, vec![0.5, 0.5]).unwrap();
        let mut b = BranchProbs::new();
        b.set(f, vec![0.8, 0.2]).unwrap();
        assert!((a.max_abs_diff(&b) - 0.3).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
