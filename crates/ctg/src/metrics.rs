//! Structural metrics of conditional task graphs.
//!
//! Used by the generators' tests (to check the produced families look like
//! the paper's), the CLI summary, and experiment reporting.

use crate::graph::Ctg;
use crate::scenario::ScenarioSet;

/// A summary of a CTG's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CtgMetrics {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of branch fork nodes.
    pub branches: usize,
    /// Number of runtime scenarios (reachable minterms).
    pub scenarios: usize,
    /// Length (in tasks) of the longest source→sink chain.
    pub depth: usize,
    /// Maximum antichain width approximated as the largest number of tasks
    /// at equal depth.
    pub width: usize,
    /// Fraction of tasks that are conditionally activated.
    pub conditional_fraction: f64,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Total communication volume (Kbytes).
    pub total_comm: f64,
}

/// Computes the metrics of `ctg`.
///
/// ```
/// use ctg_model::{metrics, CtgBuilder};
/// # fn main() -> Result<(), ctg_model::BuildError> {
/// let mut b = CtgBuilder::new("g");
/// let a = b.add_task("a");
/// let c = b.add_task("c");
/// b.add_edge(a, c, 2.0)?;
/// let g = b.deadline(1.0).build()?;
/// let m = metrics::compute(&g);
/// assert_eq!(m.depth, 2);
/// assert_eq!(m.total_comm, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn compute(ctg: &Ctg) -> CtgMetrics {
    let n = ctg.num_tasks();
    let act = ctg.activation();
    let scenarios = ScenarioSet::enumerate(ctg, &act);

    // Depth per task (longest chain from any source, in tasks).
    let mut depth = vec![1usize; n];
    for &t in ctg.topological() {
        for s in ctg.successors(t) {
            depth[s.index()] = depth[s.index()].max(depth[t.index()] + 1);
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut level_counts = vec![0usize; max_depth + 1];
    for &d in &depth {
        level_counts[d] += 1;
    }
    let width = level_counts.iter().copied().max().unwrap_or(0);

    let conditional = ctg.tasks().filter(|&t| !act.condition(t).is_true()).count();

    CtgMetrics {
        tasks: n,
        edges: ctg.num_edges(),
        branches: ctg.num_branches(),
        scenarios: scenarios.len(),
        depth: max_depth,
        width,
        conditional_fraction: conditional as f64 / n as f64,
        avg_out_degree: ctg.num_edges() as f64 / n as f64,
        total_comm: ctg.edges().map(|(_, e)| e.comm_kbytes()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;

    #[test]
    fn chain_metrics() {
        let mut b = CtgBuilder::new("chain");
        let a = b.add_task("a");
        let c = b.add_task("c");
        let d = b.add_task("d");
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 2.0).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        let m = compute(&g);
        assert_eq!(m.tasks, 3);
        assert_eq!(m.depth, 3);
        assert_eq!(m.width, 1);
        assert_eq!(m.scenarios, 1);
        assert_eq!(m.conditional_fraction, 0.0);
        assert_eq!(m.total_comm, 3.0);
    }

    #[test]
    fn fork_metrics() {
        let mut b = CtgBuilder::new("fork");
        let f = b.add_task("f");
        let x = b.add_task("x");
        let y = b.add_task("y");
        b.add_cond_edge(f, x, 0, 1.0).unwrap();
        b.add_cond_edge(f, y, 1, 1.0).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        let m = compute(&g);
        assert_eq!(m.branches, 1);
        assert_eq!(m.scenarios, 2);
        assert_eq!(m.depth, 2);
        assert_eq!(m.width, 2);
        assert!((m.conditional_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_width() {
        let mut b = CtgBuilder::new("wide");
        let s = b.add_task("s");
        for i in 0..4 {
            let t = b.add_task(format!("p{i}"));
            b.add_edge(s, t, 0.0).unwrap();
        }
        let g = b.deadline(1.0).build().unwrap();
        assert_eq!(compute(&g).width, 4);
    }
}
