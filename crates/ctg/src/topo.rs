//! Topological utilities over the task precedence relation.

use crate::graph::{Ctg, Edge};
use crate::id::TaskId;

/// Computes a topological order of `n` vertices under `edges` using Kahn's
/// algorithm, or `None` when the relation is cyclic.
///
/// Vertices with equal depth are emitted in index order, making the result
/// deterministic.
pub(crate) fn topological_order_of(n: usize, edges: &[Edge]) -> Option<Vec<TaskId>> {
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        indeg[e.dst().index()] += 1;
        succ[e.src().index()].push(e.dst().index());
    }
    // A sorted ready set keeps the order deterministic.
    let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    ready.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest from the back
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        order.push(TaskId::new(v));
        for &w in &succ[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                let pos = ready.binary_search_by(|x| w.cmp(x)).unwrap_or_else(|p| p);
                ready.insert(pos, w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Returns a topological order of the tasks of `ctg`.
///
/// Equivalent to [`Ctg::topological`] but returns an owned vector.
///
/// ```
/// use ctg_model::{CtgBuilder, topological_order};
/// # fn main() -> Result<(), ctg_model::BuildError> {
/// let mut b = CtgBuilder::new("g");
/// let a = b.add_task("a");
/// let c = b.add_task("c");
/// b.add_edge(a, c, 0.0)?;
/// let g = b.deadline(1.0).build()?;
/// assert_eq!(topological_order(&g), vec![a, c]);
/// # Ok(())
/// # }
/// ```
pub fn topological_order(ctg: &Ctg) -> Vec<TaskId> {
    ctg.topological().to_vec()
}

/// Returns the set of (transitive) ancestors of `task`, as a boolean vector
/// indexed by task id.
pub fn ancestors(ctg: &Ctg, task: TaskId) -> Vec<bool> {
    let mut seen = vec![false; ctg.num_tasks()];
    let mut stack = vec![task];
    while let Some(t) = stack.pop() {
        for p in ctg.predecessors(t) {
            if !seen[p.index()] {
                seen[p.index()] = true;
                stack.push(p);
            }
        }
    }
    seen
}

/// Returns the set of (transitive) descendants of `task`, as a boolean vector
/// indexed by task id.
pub fn descendants(ctg: &Ctg, task: TaskId) -> Vec<bool> {
    let mut seen = vec![false; ctg.num_tasks()];
    let mut stack = vec![task];
    while let Some(t) = stack.pop() {
        for s in ctg.successors(t) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;

    fn diamond() -> (Ctg, [TaskId; 4]) {
        let mut b = CtgBuilder::new("diamond");
        let a = b.add_task("a");
        let l = b.add_task("l");
        let r = b.add_task("r");
        let z = b.add_task("z");
        b.add_edge(a, l, 0.0).unwrap();
        b.add_edge(a, r, 0.0).unwrap();
        b.add_edge(l, z, 0.0).unwrap();
        b.add_edge(r, z, 0.0).unwrap();
        (b.deadline(1.0).build().unwrap(), [a, l, r, z])
    }

    #[test]
    fn topo_respects_precedence() {
        let (g, [a, l, r, z]) = diamond();
        let order = topological_order(&g);
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(a) < pos(l));
        assert!(pos(a) < pos(r));
        assert!(pos(l) < pos(z));
        assert!(pos(r) < pos(z));
    }

    #[test]
    fn topo_is_deterministic_index_order_for_ties() {
        let (g, [_, l, r, _]) = diamond();
        let order = topological_order(&g);
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        // l was added before r; ties break by index.
        assert!(pos(l) < pos(r));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (g, [a, l, r, z]) = diamond();
        let anc = ancestors(&g, z);
        assert!(anc[a.index()] && anc[l.index()] && anc[r.index()]);
        assert!(!anc[z.index()]);
        let desc = descendants(&g, a);
        assert!(desc[l.index()] && desc[r.index()] && desc[z.index()]);
        assert!(!desc[a.index()]);
        // A node unrelated to r.
        assert!(!descendants(&g, l)[r.index()]);
    }
}
