//! Conditional task graph (CTG) model for real-time applications with
//! non-deterministic workload.
//!
//! A CTG is an acyclic graph whose vertices are tasks and whose edges are
//! precedence/data-dependency relations. Some edges are *conditional*: they
//! are guarded by the outcome of a *branch fork node* and are only traversed
//! when that node selects the corresponding alternative at runtime. Nodes are
//! either *and-nodes* (activated when **all** incoming guarded dependencies
//! fire) or *or-nodes* (activated when **any** fires).
//!
//! This crate provides:
//!
//! * the graph structure itself ([`Ctg`], [`CtgBuilder`]),
//! * a small condition algebra ([`Literal`], [`Cube`], [`Dnf`]) used to
//!   represent task activation conditions `X(τ)`,
//! * activation analysis ([`Activation`]): `X(τ)`, the minterm family `Γ(τ)`,
//!   mutual-exclusion tests and the implied dependencies between or-nodes and
//!   the branch fork nodes that decide their predecessors,
//! * runtime scenarios ([`ScenarioSet`], [`DecisionVector`]) together with
//!   branch-probability bookkeeping ([`BranchProbs`]),
//! * source→sink path enumeration over the plain CTG ([`paths`]),
//! * structural metrics ([`metrics`]), Graphviz export ([`dot`]) and a
//!   line-based text serialization ([`text`]).
//!
//! # Example
//!
//! Build the CTG of Example 1 from the paper and query its activation
//! conditions:
//!
//! ```
//! use ctg_model::{CtgBuilder, NodeKind};
//!
//! # fn main() -> Result<(), ctg_model::BuildError> {
//! let mut b = CtgBuilder::new("example1");
//! let t1 = b.add_task("t1");
//! let t2 = b.add_task("t2");
//! let t3 = b.add_task("t3"); // branch fork: a1 / a2
//! let t4 = b.add_task("t4");
//! let t5 = b.add_task("t5"); // branch fork: b1 / b2
//! let t6 = b.add_task("t6");
//! let t7 = b.add_task("t7");
//! let t8 = b.add_task_with_kind("t8", NodeKind::Or);
//! b.add_edge(t1, t2, 1.0)?;
//! b.add_edge(t1, t3, 1.0)?;
//! b.add_cond_edge(t3, t4, 0, 1.0)?; // a1
//! b.add_cond_edge(t3, t5, 1, 1.0)?; // a2
//! b.add_cond_edge(t5, t6, 0, 1.0)?; // b1
//! b.add_cond_edge(t5, t7, 1, 1.0)?; // b2
//! b.add_edge(t2, t8, 1.0)?;
//! b.add_edge(t4, t8, 1.0)?;
//! let ctg = b.deadline(100.0).build()?;
//!
//! let act = ctg.activation();
//! assert!(act.mutually_exclusive(t4, t5));
//! assert!(!act.mutually_exclusive(t2, t4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod builder;
mod condition;
pub mod dot;
mod error;
mod graph;
mod id;
pub mod metrics;
pub mod paths;
mod probability;
pub mod project;
mod scenario;
pub mod text;
mod topo;

pub use activation::Activation;
pub use builder::CtgBuilder;
pub use condition::{Cube, Dnf, Literal};
pub use error::{BuildError, ProbError};
pub use graph::{Ctg, Edge, Node, NodeKind};
pub use id::{EdgeId, TaskId};
pub use probability::BranchProbs;
pub use scenario::{DecisionVector, Scenario, ScenarioSet};
pub use topo::{ancestors, descendants, topological_order};
