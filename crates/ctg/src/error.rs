//! Error types for graph construction and probability tables.

use crate::id::TaskId;
use std::error::Error;
use std::fmt;

/// Error produced while building or validating a [`Ctg`](crate::Ctg).
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// An edge refers to a task id that was never added.
    UnknownTask(TaskId),
    /// An edge would connect a task to itself.
    SelfLoop(TaskId),
    /// The same (src, dst) edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The graph contains a cycle and is therefore not a valid CTG.
    Cyclic,
    /// A branch fork node mixes conditional and unconditional outgoing edges
    /// in a way that leaves an alternative index gap (alternatives must be
    /// `0..k` with every index used by at least one edge).
    AlternativeGap {
        /// The offending branch fork node.
        branch: TaskId,
        /// The first missing alternative index.
        missing: u8,
    },
    /// A branch fork node has a single alternative, which is not a branch.
    DegenerateBranch(TaskId),
    /// The deadline is not strictly positive and finite.
    InvalidDeadline(f64),
    /// A communication volume is negative or not finite.
    InvalidCommVolume {
        /// Source of the offending edge.
        src: TaskId,
        /// Destination of the offending edge.
        dst: TaskId,
        /// The rejected volume value (Kbytes).
        volume: f64,
    },
    /// The graph has no tasks.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownTask(t) => write!(f, "edge refers to unknown task {t}"),
            BuildError::SelfLoop(t) => write!(f, "self loop on task {t}"),
            BuildError::DuplicateEdge(s, d) => write!(f, "duplicate edge {s} -> {d}"),
            BuildError::Cyclic => write!(f, "graph contains a cycle"),
            BuildError::AlternativeGap { branch, missing } => write!(
                f,
                "branch fork node {branch} is missing alternative index {missing}"
            ),
            BuildError::DegenerateBranch(t) => {
                write!(f, "branch fork node {t} has a single alternative")
            }
            BuildError::InvalidDeadline(d) => write!(f, "invalid deadline {d}"),
            BuildError::InvalidCommVolume { src, dst, volume } => write!(
                f,
                "invalid communication volume {volume} on edge {src} -> {dst}"
            ),
            BuildError::Empty => write!(f, "graph has no tasks"),
        }
    }
}

impl Error for BuildError {}

/// Error produced while building a [`BranchProbs`](crate::BranchProbs) table.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// The referenced task is not a branch fork node of the graph.
    NotABranch(TaskId),
    /// The probability vector has the wrong number of alternatives.
    WrongArity {
        /// The branch fork node concerned.
        branch: TaskId,
        /// The number of alternatives the node actually has.
        expected: usize,
        /// The number of probabilities supplied.
        got: usize,
    },
    /// A probability is negative, non-finite, or the vector does not sum to 1.
    InvalidDistribution(TaskId),
    /// No probabilities were supplied for a branch fork node of the graph.
    MissingBranch(TaskId),
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::NotABranch(t) => write!(f, "task {t} is not a branch fork node"),
            ProbError::WrongArity {
                branch,
                expected,
                got,
            } => write!(
                f,
                "branch {branch} has {expected} alternatives but {got} probabilities were given"
            ),
            ProbError::InvalidDistribution(t) => {
                write!(f, "probabilities for branch {t} do not form a distribution")
            }
            ProbError::MissingBranch(t) => {
                write!(f, "no probabilities supplied for branch {t}")
            }
        }
    }
}

impl Error for ProbError {}
