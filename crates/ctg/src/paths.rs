//! Source→sink path enumeration over the plain CTG.
//!
//! The stretching heuristic (implemented in the scheduler crate) enumerates
//! paths over the *scheduled* graph, which additionally contains
//! processor-order pseudo-edges; this module provides the underlying
//! CTG-level enumeration used for graph analysis and testing, together with
//! the per-path condition cube.

use crate::activation::Activation;
use crate::condition::{Cube, Literal};
use crate::graph::Ctg;
use crate::id::TaskId;

/// A simple source→sink path through the CTG.
#[derive(Debug, Clone, PartialEq)]
pub struct CtgPath {
    /// The tasks along the path, in order.
    pub tasks: Vec<TaskId>,
    /// Conjunction of the branch literals guarding edges of the path.
    pub cube: Cube,
}

impl CtgPath {
    /// Whether `task` lies on this path.
    pub fn spans(&self, task: TaskId) -> bool {
        self.tasks.contains(&task)
    }
}

/// Enumerates every simple source→sink path whose edge guards are mutually
/// consistent, up to `cap` paths.
///
/// Paths whose accumulated guards contradict (which can only happen through
/// joins of mutually exclusive branches) are skipped. Returns `None` when
/// the enumeration would exceed `cap`, signalling the caller to fall back to
/// a coarser analysis.
pub fn enumerate_paths(ctg: &Ctg, cap: usize) -> Option<Vec<CtgPath>> {
    let mut out = Vec::new();
    let mut stack: Vec<(TaskId, Vec<TaskId>, Cube)> =
        ctg.sources().map(|s| (s, vec![s], Cube::top())).collect();
    while let Some((t, tasks, cube)) = stack.pop() {
        let mut extended = false;
        for (_, e) in ctg.out_edges(t) {
            let next_cube = match e.condition() {
                Some(alt) => match cube.with(Literal::new(t, alt)) {
                    Some(c) => c,
                    None => continue,
                },
                None => cube.clone(),
            };
            let mut next_tasks = tasks.clone();
            next_tasks.push(e.dst());
            stack.push((e.dst(), next_tasks, next_cube));
            extended = true;
        }
        if !extended {
            out.push(CtgPath { tasks, cube });
            if out.len() > cap {
                return None;
            }
        }
    }
    // Deterministic order regardless of stack traversal.
    out.sort_by(|a, b| a.tasks.cmp(&b.tasks));
    Some(out)
}

/// The paper's `prob(p, τ)`: the joint probability of the conditional
/// branches lying on path `p` strictly **after** node `τ`.
///
/// Branch decisions are taken at fork nodes; a literal "counts" when its fork
/// node appears on the path at or after the position of `τ`.
///
/// # Panics
///
/// Panics if `task` is not on the path.
pub fn prob_after(path: &CtgPath, task: TaskId, probs: &crate::probability::BranchProbs) -> f64 {
    let pos = path
        .tasks
        .iter()
        .position(|&t| t == task)
        .expect("task must lie on the path");
    path.cube
        .literals()
        .iter()
        .filter(|lit| {
            path.tasks
                .iter()
                .position(|&t| t == lit.branch())
                .is_some_and(|p| p >= pos)
        })
        .map(|lit| probs.prob(lit.branch(), lit.alt()))
        .product()
}

/// Convenience: enumerate paths and keep only those consistent with the
/// activation analysis (every task on the path can be active together with
/// the path's cube).
pub fn consistent_paths(ctg: &Ctg, act: &Activation, cap: usize) -> Option<Vec<CtgPath>> {
    let paths = enumerate_paths(ctg, cap)?;
    Some(
        paths
            .into_iter()
            .filter(|p| {
                p.tasks.iter().all(|&t| {
                    act.condition(t)
                        .cubes()
                        .iter()
                        .any(|c| c.and(&p.cube).is_some())
                })
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;
    use crate::probability::BranchProbs;

    fn fork_join() -> (Ctg, [TaskId; 5]) {
        // s -> f -(0)-> x -> z ; f -(1)-> y -> z (z is and-join; with
        // exclusive parents the joined path cubes stay consistent per arm).
        let mut b = CtgBuilder::new("g");
        let s = b.add_task("s");
        let f = b.add_task("f");
        let x = b.add_task("x");
        let y = b.add_task("y");
        let z = b.add_task("z");
        b.add_edge(s, f, 0.0).unwrap();
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        b.add_cond_edge(f, y, 1, 0.0).unwrap();
        b.add_edge(x, z, 0.0).unwrap();
        b.add_edge(y, z, 0.0).unwrap();
        (b.deadline(1.0).build().unwrap(), [s, f, x, y, z])
    }

    #[test]
    fn enumerates_both_arms() {
        let (g, [s, f, x, y, z]) = fork_join();
        let paths = enumerate_paths(&g, 100).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.tasks == vec![s, f, x, z]));
        assert!(paths.iter().any(|p| p.tasks == vec![s, f, y, z]));
        for p in &paths {
            assert_eq!(p.cube.len(), 1);
        }
    }

    #[test]
    fn cap_returns_none() {
        let (g, _) = fork_join();
        assert!(enumerate_paths(&g, 1).is_none());
    }

    #[test]
    fn prob_after_counts_only_later_forks() {
        let (g, [s, f, x, _, z]) = fork_join();
        let mut probs = BranchProbs::new();
        probs.set(f, vec![0.25, 0.75]).unwrap();
        let paths = enumerate_paths(&g, 100).unwrap();
        let px = paths.iter().find(|p| p.tasks.contains(&x)).unwrap();
        // Before or at the fork, the branch decision is still pending.
        assert!((prob_after(px, s, &probs) - 0.25).abs() < 1e-12);
        assert!((prob_after(px, f, &probs) - 0.25).abs() < 1e-12);
        // After the fork resolved, the path is certain.
        assert!((prob_after(px, x, &probs) - 1.0).abs() < 1e-12);
        assert!((prob_after(px, z, &probs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consistent_paths_drop_impossible_joins() {
        // and-join of two exclusive branches: neither arm's path can activate
        // the join, so consistent_paths removes both.
        let (g, [_, _, _, _, z]) = fork_join();
        let act = g.activation();
        assert!(act.condition(z).is_false());
        let ps = consistent_paths(&g, &act, 100).unwrap();
        assert!(ps.iter().all(|p| !p.spans(z)));
    }
}
