//! Strongly typed identifiers for tasks and edges.

use std::fmt;

/// Identifier of a task (vertex) within a [`Ctg`](crate::Ctg).
///
/// Task ids are dense indices assigned in insertion order by
/// [`CtgBuilder::add_task`](crate::CtgBuilder::add_task); they are only
/// meaningful relative to the graph that produced them.
///
/// ```
/// use ctg_model::TaskId;
/// let t = TaskId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "t3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task id from a dense index.
    pub fn new(index: usize) -> Self {
        TaskId(index as u32)
    }

    /// Returns the dense index of this task.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<TaskId> for usize {
    fn from(id: TaskId) -> usize {
        id.index()
    }
}

/// Identifier of an edge within a [`Ctg`](crate::Ctg).
///
/// Edge ids are dense indices assigned in insertion order.
///
/// ```
/// use ctg_model::EdgeId;
/// assert_eq!(EdgeId::new(0).to_string(), "e0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_roundtrip() {
        let t = TaskId::new(42);
        assert_eq!(t.index(), 42);
        assert_eq!(usize::from(t), 42);
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(usize::from(e), 7);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId::new(9).to_string(), "t9");
        assert_eq!(EdgeId::new(9).to_string(), "e9");
    }
}
