//! Builder and validation for [`Ctg`].

use crate::error::BuildError;
use crate::graph::{Ctg, Edge, Node, NodeKind};
use crate::id::{EdgeId, TaskId};
use crate::topo::topological_order_of;

/// Incremental builder for a [`Ctg`].
///
/// Tasks are added first, then edges; [`CtgBuilder::build`] validates the
/// whole graph (acyclicity, branch-alternative consistency, deadline) and
/// returns the immutable [`Ctg`].
///
/// # Example
///
/// ```
/// use ctg_model::CtgBuilder;
///
/// # fn main() -> Result<(), ctg_model::BuildError> {
/// let mut b = CtgBuilder::new("pipeline");
/// let src = b.add_task("producer");
/// let dst = b.add_task("consumer");
/// b.add_edge(src, dst, 4.0)?; // 4 Kbytes transferred
/// let ctg = b.deadline(20.0).build()?;
/// assert_eq!(ctg.num_tasks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CtgBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    deadline: f64,
}

impl CtgBuilder {
    /// Creates an empty builder for a graph called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CtgBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            deadline: 1.0,
        }
    }

    /// Adds an and-node task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>) -> TaskId {
        self.add_task_with_kind(name, NodeKind::And)
    }

    /// Adds a task with explicit activation semantics and returns its id.
    pub fn add_task_with_kind(&mut self, name: impl Into<String>, kind: NodeKind) -> TaskId {
        let id = TaskId::new(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            kind,
            alternatives: 0,
        });
        id
    }

    /// Adds an unconditional edge carrying `comm_kbytes` Kbytes.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown endpoints, self loops, duplicate edges or
    /// invalid communication volumes.
    pub fn add_edge(
        &mut self,
        src: TaskId,
        dst: TaskId,
        comm_kbytes: f64,
    ) -> Result<EdgeId, BuildError> {
        self.push_edge(src, dst, None, comm_kbytes)
    }

    /// Adds a conditional edge guarded by alternative `alt` of the source
    /// fork node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CtgBuilder::add_edge`].
    pub fn add_cond_edge(
        &mut self,
        src: TaskId,
        dst: TaskId,
        alt: u8,
        comm_kbytes: f64,
    ) -> Result<EdgeId, BuildError> {
        self.push_edge(src, dst, Some(alt), comm_kbytes)
    }

    fn push_edge(
        &mut self,
        src: TaskId,
        dst: TaskId,
        condition: Option<u8>,
        comm_kbytes: f64,
    ) -> Result<EdgeId, BuildError> {
        for t in [src, dst] {
            if t.index() >= self.nodes.len() {
                return Err(BuildError::UnknownTask(t));
            }
        }
        if src == dst {
            return Err(BuildError::SelfLoop(src));
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(BuildError::DuplicateEdge(src, dst));
        }
        if !comm_kbytes.is_finite() || comm_kbytes < 0.0 {
            return Err(BuildError::InvalidCommVolume {
                src,
                dst,
                volume: comm_kbytes,
            });
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge {
            src,
            dst,
            condition,
            comm_kbytes,
        });
        Ok(id)
    }

    /// Sets the common deadline (= period) of the graph.
    pub fn deadline(&mut self, deadline: f64) -> &mut Self {
        self.deadline = deadline;
        self
    }

    /// Validates and finalizes the graph.
    ///
    /// # Errors
    ///
    /// * [`BuildError::Empty`] — no tasks were added;
    /// * [`BuildError::Cyclic`] — the edge relation has a cycle;
    /// * [`BuildError::AlternativeGap`] / [`BuildError::DegenerateBranch`] —
    ///   the conditional out-edges of a fork node do not use alternatives
    ///   `0..k` with `k ≥ 2`;
    /// * [`BuildError::InvalidDeadline`] — the deadline is not positive/finite.
    pub fn build(&self) -> Result<Ctg, BuildError> {
        if self.nodes.is_empty() {
            return Err(BuildError::Empty);
        }
        if !self.deadline.is_finite() || self.deadline <= 0.0 {
            return Err(BuildError::InvalidDeadline(self.deadline));
        }

        let n = self.nodes.len();
        let mut succ: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut pred: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            succ[e.src.index()].push(EdgeId::new(i));
            pred[e.dst.index()].push(EdgeId::new(i));
        }

        // Derive branch alternatives from conditional out-edges and validate.
        let mut nodes = self.nodes.clone();
        for t in 0..n {
            let mut alts: Vec<u8> = succ[t]
                .iter()
                .filter_map(|&e| self.edges[e.index()].condition)
                .collect();
            if alts.is_empty() {
                continue;
            }
            alts.sort_unstable();
            alts.dedup();
            let count = alts.len() as u8;
            if count == 1 {
                return Err(BuildError::DegenerateBranch(TaskId::new(t)));
            }
            for (want, &got) in alts.iter().enumerate() {
                if got != want as u8 {
                    return Err(BuildError::AlternativeGap {
                        branch: TaskId::new(t),
                        missing: want as u8,
                    });
                }
            }
            nodes[t].alternatives = count;
        }

        let topo = topological_order_of(n, &self.edges).ok_or(BuildError::Cyclic)?;
        let branch_nodes: Vec<TaskId> = topo
            .iter()
            .copied()
            .filter(|t| nodes[t.index()].alternatives > 0)
            .collect();

        Ok(Ctg {
            name: self.name.clone(),
            nodes,
            edges: self.edges.clone(),
            succ,
            pred,
            topo,
            branch_nodes,
            deadline: self.deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(CtgBuilder::new("g").build(), Err(BuildError::Empty));
    }

    #[test]
    fn rejects_unknown_task_and_self_loop() {
        let mut b = CtgBuilder::new("g");
        let a = b.add_task("a");
        let ghost = TaskId::new(9);
        assert_eq!(
            b.add_edge(a, ghost, 0.0),
            Err(BuildError::UnknownTask(ghost))
        );
        assert_eq!(b.add_edge(a, a, 0.0), Err(BuildError::SelfLoop(a)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = CtgBuilder::new("g");
        let a = b.add_task("a");
        let c = b.add_task("c");
        b.add_edge(a, c, 0.0).unwrap();
        assert_eq!(b.add_edge(a, c, 1.0), Err(BuildError::DuplicateEdge(a, c)));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = CtgBuilder::new("g");
        let a = b.add_task("a");
        let c = b.add_task("c");
        b.add_edge(a, c, 0.0).unwrap();
        b.add_edge(c, a, 0.0).unwrap();
        assert_eq!(b.deadline(1.0).build(), Err(BuildError::Cyclic));
    }

    #[test]
    fn rejects_alternative_gap_and_degenerate_branch() {
        let mut b = CtgBuilder::new("g");
        let f = b.add_task("f");
        let x = b.add_task("x");
        let y = b.add_task("y");
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        b.add_cond_edge(f, y, 2, 0.0).unwrap();
        assert_eq!(
            b.deadline(1.0).build(),
            Err(BuildError::AlternativeGap {
                branch: f,
                missing: 1
            })
        );

        let mut b = CtgBuilder::new("g");
        let f = b.add_task("f");
        let x = b.add_task("x");
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        assert_eq!(
            b.deadline(1.0).build(),
            Err(BuildError::DegenerateBranch(f))
        );
    }

    #[test]
    fn rejects_bad_deadline_and_volume() {
        let mut b = CtgBuilder::new("g");
        let a = b.add_task("a");
        let c = b.add_task("c");
        assert!(matches!(
            b.add_edge(a, c, -1.0),
            Err(BuildError::InvalidCommVolume { .. })
        ));
        b.add_edge(a, c, 1.0).unwrap();
        assert_eq!(
            b.deadline(0.0).build(),
            Err(BuildError::InvalidDeadline(0.0))
        );
        assert!(matches!(
            b.deadline(f64::NAN).build(),
            Err(BuildError::InvalidDeadline(d)) if d.is_nan()
        ));
    }

    #[test]
    fn multiple_edges_per_alternative_allowed() {
        // A fork alternative may activate several successors.
        let mut b = CtgBuilder::new("g");
        let f = b.add_task("f");
        let x = b.add_task("x");
        let y = b.add_task("y");
        let z = b.add_task("z");
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        b.add_cond_edge(f, y, 0, 0.0).unwrap();
        b.add_cond_edge(f, z, 1, 0.0).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        assert_eq!(g.node(f).alternatives(), 2);
    }

    #[test]
    fn branch_nodes_in_topological_order() {
        let mut b = CtgBuilder::new("g");
        let f2 = b.add_task("late-fork"); // added first, appears later in topo
        let f1 = b.add_task("early-fork");
        let x = b.add_task("x");
        let y = b.add_task("y");
        let p = b.add_task("p");
        let q = b.add_task("q");
        b.add_cond_edge(f1, f2, 0, 0.0).unwrap();
        b.add_cond_edge(f1, x, 1, 0.0).unwrap();
        b.add_cond_edge(f2, p, 0, 0.0).unwrap();
        b.add_cond_edge(f2, q, 1, 0.0).unwrap();
        b.add_edge(x, y, 0.0).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        assert_eq!(g.branch_nodes(), &[f1, f2]);
    }
}
