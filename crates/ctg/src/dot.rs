//! Graphviz (DOT) export of conditional task graphs.

use crate::graph::{Ctg, NodeKind};
use std::fmt::Write as _;

/// Renders `ctg` as a Graphviz `digraph`.
///
/// Branch fork nodes are drawn as diamonds, or-nodes as double circles, and
/// conditional edges are dashed and labelled with their alternative index.
///
/// ```
/// use ctg_model::{CtgBuilder, dot};
/// # fn main() -> Result<(), ctg_model::BuildError> {
/// let mut b = CtgBuilder::new("g");
/// let a = b.add_task("a");
/// let c = b.add_task("c");
/// b.add_edge(a, c, 1.5)?;
/// let g = b.deadline(1.0).build()?;
/// let rendered = dot::to_dot(&g);
/// assert!(rendered.contains("digraph"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(ctg: &Ctg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", ctg.name());
    let _ = writeln!(s, "  rankdir=TB;");
    for t in ctg.tasks() {
        let node = ctg.node(t);
        let shape = if node.is_branch() {
            "diamond"
        } else if node.kind() == NodeKind::Or {
            "doublecircle"
        } else {
            "ellipse"
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\" shape={}];",
            t.index(),
            node.name(),
            shape
        );
    }
    for (_, e) in ctg.edges() {
        match e.condition() {
            Some(alt) => {
                let _ = writeln!(
                    s,
                    "  {} -> {} [style=dashed label=\"alt{} ({}KB)\"];",
                    e.src().index(),
                    e.dst().index(),
                    alt,
                    e.comm_kbytes()
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "  {} -> {} [label=\"{}KB\"];",
                    e.src().index(),
                    e.dst().index(),
                    e.comm_kbytes()
                );
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;
    use crate::graph::NodeKind;

    #[test]
    fn renders_all_node_shapes_and_edge_styles() {
        let mut b = CtgBuilder::new("shapes");
        let f = b.add_task("fork");
        let x = b.add_task("x");
        let y = b.add_task("y");
        let o = b.add_task_with_kind("or", NodeKind::Or);
        b.add_cond_edge(f, x, 0, 1.0).unwrap();
        b.add_cond_edge(f, y, 1, 2.0).unwrap();
        b.add_edge(x, o, 0.5).unwrap();
        b.add_edge(y, o, 0.5).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=doublecircle"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("alt1"));
        assert!(dot.starts_with("digraph \"shapes\""));
        assert!(dot.trim_end().ends_with('}'));
    }
}
