//! Runtime scenarios and branch-decision vectors.
//!
//! A **decision vector** records, for one execution (instance) of the CTG,
//! the alternative chosen by every branch fork node — one vector position per
//! fork node, in topological order, exactly as the paper encodes its traces
//! (`⟨x1, x2, …, xn⟩`). A **scenario** is the projection of such a vector
//! onto the fork nodes that were actually activated; the set of scenarios is
//! the paper's minterm set `M` (plus the constant-true minterm "1").

use crate::activation::Activation;
use crate::condition::Cube;
use crate::graph::Ctg;
use crate::id::TaskId;
use crate::probability::BranchProbs;
use std::fmt;

/// One concrete run of the CTG: the alternative selected by each branch fork
/// node, in [`Ctg::branch_nodes`] order.
///
/// Positions of fork nodes that end up not being activated are still present
/// (a trace monitor records them anyway); they are simply ignored when
/// computing the active task set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecisionVector {
    alts: Vec<u8>,
}

impl DecisionVector {
    /// Creates a vector from per-fork alternatives in branch-node order.
    pub fn new(alts: Vec<u8>) -> Self {
        DecisionVector { alts }
    }

    /// The raw alternatives.
    pub fn alts(&self) -> &[u8] {
        &self.alts
    }

    /// Number of fork positions.
    pub fn len(&self) -> usize {
        self.alts.len()
    }

    /// Whether the vector has no positions.
    pub fn is_empty(&self) -> bool {
        self.alts.is_empty()
    }

    /// The alternative recorded for the fork at `branch_index`.
    ///
    /// # Panics
    ///
    /// Panics if `branch_index` is out of range.
    pub fn alt(&self, branch_index: usize) -> u8 {
        self.alts[branch_index]
    }

    /// Looks the vector up as an assignment for `ctg`'s fork nodes.
    ///
    /// Returns a closure suitable for [`Activation::is_active`].
    pub fn assignment<'a>(&'a self, ctg: &'a Ctg) -> impl Fn(TaskId) -> Option<u8> + Copy + 'a {
        move |b: TaskId| ctg.branch_index(b).map(|i| self.alts[i])
    }

    /// Computes the set of activated tasks under this vector, as a boolean
    /// vector indexed by task id.
    pub fn active_tasks(&self, ctg: &Ctg, act: &Activation) -> Vec<bool> {
        let mut out = Vec::new();
        self.active_tasks_into(ctg, act, &mut out);
        out
    }

    /// Like [`DecisionVector::active_tasks`], but writes into `out` so a hot
    /// loop can reuse one buffer across instances without reallocating.
    pub fn active_tasks_into(&self, ctg: &Ctg, act: &Activation, out: &mut Vec<bool>) {
        let assign = self.assignment(ctg);
        out.clear();
        out.extend(ctg.tasks().map(|t| act.is_active(t, assign)));
    }
}

impl fmt::Display for DecisionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, a) in self.alts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "⟩")
    }
}

/// A consistent assignment of alternatives to the *activated* fork nodes of
/// one run, together with the tasks it activates.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    cube: Cube,
    active: Vec<bool>,
}

impl Scenario {
    /// The conjunction of branch literals decided in this scenario
    /// (the paper's minterm).
    pub fn cube(&self) -> &Cube {
        &self.cube
    }

    /// Whether `task` is activated in this scenario.
    pub fn is_active(&self, task: TaskId) -> bool {
        self.active[task.index()]
    }

    /// The activated task set as a boolean vector indexed by task id.
    pub fn active_tasks(&self) -> &[bool] {
        &self.active
    }

    /// Probability of this scenario under `probs` (product of the decided
    /// alternatives' probabilities).
    pub fn probability(&self, probs: &BranchProbs) -> f64 {
        self.cube.probability(probs)
    }
}

/// The complete enumeration of scenarios of a CTG.
///
/// Fork nodes are processed in topological order; a fork only contributes a
/// decision when it is activated under the decisions taken so far, so nested
/// conditional structures produce exactly the reachable minterms (e.g.
/// `{a1, a2·b1, a2·b2}` for the paper's Example 1).
///
/// The number of scenarios is at most `Π alternatives(b)` over fork nodes;
/// the paper's workloads stay well below 1024.
#[derive(Debug, Clone)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// Enumerates all scenarios of `ctg`.
    pub fn enumerate(ctg: &Ctg, act: &Activation) -> Self {
        let mut scenarios = Vec::new();
        let forks = ctg.branch_nodes();
        // Depth-first over fork nodes in topological order.
        let mut stack: Vec<(usize, Cube)> = vec![(0, Cube::top())];
        while let Some((i, cube)) = stack.pop() {
            if i == forks.len() {
                let assign = |b: TaskId| cube.alt_of(b);
                let active = ctg.tasks().map(|t| act.is_active(t, assign)).collect();
                scenarios.push(Scenario { cube, active });
                continue;
            }
            let fork = forks[i];
            let assign = |b: TaskId| cube.alt_of(b);
            if !act.is_active(fork, assign) {
                // Fork not reached under current decisions: no decision taken.
                stack.push((i + 1, cube));
                continue;
            }
            let alts = ctg.node(fork).alternatives();
            for alt in (0..alts).rev() {
                let ext = cube
                    .with(crate::condition::Literal::new(fork, alt))
                    .expect("fresh branch literal cannot contradict");
                stack.push((i + 1, ext));
            }
        }
        ScenarioSet { scenarios }
    }

    /// The scenarios in deterministic enumeration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty (never true for a valid CTG).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The paper's minterm set `M`: the scenario cubes plus the constant-true
    /// minterm "1".
    pub fn minterms(&self) -> Vec<Cube> {
        let mut m = vec![Cube::top()];
        for s in &self.scenarios {
            if !m.contains(s.cube()) {
                m.push(s.cube().clone());
            }
        }
        m
    }

    /// Activation probability `prob(τ)`: the sum of the probabilities of the
    /// scenarios that activate `task`.
    pub fn task_prob(&self, task: TaskId, probs: &BranchProbs) -> f64 {
        self.scenarios
            .iter()
            .filter(|s| s.is_active(task))
            .map(|s| s.probability(probs))
            .sum()
    }

    /// Probability that a condition cube holds: the sum over scenarios whose
    /// decisions imply the cube.
    pub fn cube_prob(&self, cube: &Cube, probs: &BranchProbs) -> f64 {
        self.scenarios
            .iter()
            .filter(|s| s.cube().implies(cube))
            .map(|s| s.probability(probs))
            .sum()
    }

    /// Finds the scenario matching a concrete decision vector (projecting
    /// away the decisions of non-activated forks).
    ///
    /// Returns `None` only if the vector length does not match the graph.
    pub fn scenario_of(&self, ctg: &Ctg, vector: &DecisionVector) -> Option<&Scenario> {
        if vector.len() != ctg.num_branches() {
            return None;
        }
        let assign = vector.assignment(ctg);
        self.scenarios.iter().find(|s| {
            s.cube()
                .literals()
                .iter()
                .all(|lit| assign(lit.branch()) == Some(lit.alt()))
                // Every activated fork in the scenario must be decided the
                // same way, and the scenario must decide every fork the
                // vector activates; cube-literal agreement plus activation
                // equality of fork nodes guarantees both.
                && ctg.branch_nodes().iter().all(|&b| {
                    let in_cube = s.cube().alt_of(b).is_some();
                    let active = s.is_active(b);
                    !active || in_cube
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;
    use crate::graph::NodeKind;

    fn example1() -> (Ctg, [TaskId; 8]) {
        let mut b = CtgBuilder::new("example1");
        let t1 = b.add_task("t1");
        let t2 = b.add_task("t2");
        let t3 = b.add_task("t3");
        let t4 = b.add_task("t4");
        let t5 = b.add_task("t5");
        let t6 = b.add_task("t6");
        let t7 = b.add_task("t7");
        let t8 = b.add_task_with_kind("t8", NodeKind::Or);
        b.add_edge(t1, t2, 1.0).unwrap();
        b.add_edge(t1, t3, 1.0).unwrap();
        b.add_cond_edge(t3, t4, 0, 1.0).unwrap();
        b.add_cond_edge(t3, t5, 1, 1.0).unwrap();
        b.add_cond_edge(t5, t6, 0, 1.0).unwrap();
        b.add_cond_edge(t5, t7, 1, 1.0).unwrap();
        b.add_edge(t2, t8, 1.0).unwrap();
        b.add_edge(t4, t8, 1.0).unwrap();
        let g = b.deadline(100.0).build().unwrap();
        (g, [t1, t2, t3, t4, t5, t6, t7, t8])
    }

    #[test]
    fn example1_scenarios_match_paper_minterms() {
        let (g, _) = example1();
        let act = g.activation();
        let set = ScenarioSet::enumerate(&g, &act);
        // a1; a2·b1; a2·b2.
        assert_eq!(set.len(), 3);
        let m = set.minterms();
        // M = {1, a1, a2·b1, a2·b2}.
        assert_eq!(m.len(), 4);
        assert!(m.iter().any(Cube::is_top));
    }

    #[test]
    fn example1_task_probabilities() {
        let (g, [t1, _, t3, t4, t5, t6, t7, t8]) = example1();
        let act = g.activation();
        let set = ScenarioSet::enumerate(&g, &act);
        let mut probs = BranchProbs::new();
        probs.set(t3, vec![0.4, 0.6]).unwrap();
        probs.set(t5, vec![0.5, 0.5]).unwrap();
        let p = |t| set.task_prob(t, &probs);
        assert!((p(t1) - 1.0).abs() < 1e-12);
        assert!((p(t4) - 0.4).abs() < 1e-12);
        assert!((p(t5) - 0.6).abs() < 1e-12);
        assert!((p(t6) - 0.3).abs() < 1e-12);
        assert!((p(t7) - 0.3).abs() < 1e-12);
        assert!((p(t8) - 1.0).abs() < 1e-12);
        // Scenario probabilities sum to 1.
        let total: f64 = set.scenarios().iter().map(|s| s.probability(&probs)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decision_vector_active_set() {
        let (g, [_, _, _, t4, t5, t6, t7, t8]) = example1();
        let act = g.activation();
        // Branch order: t3 (index 0), t5 (index 1).
        let v = DecisionVector::new(vec![1, 0]); // a2, b1
        let active = v.active_tasks(&g, &act);
        assert!(!active[t4.index()]);
        assert!(active[t5.index()]);
        assert!(active[t6.index()]);
        assert!(!active[t7.index()]);
        assert!(active[t8.index()]);

        // a1 selected: the recorded b decision is ignored.
        let v = DecisionVector::new(vec![0, 1]);
        let active = v.active_tasks(&g, &act);
        assert!(active[t4.index()]);
        assert!(!active[t5.index()]);
        assert!(!active[t7.index()]);
    }

    #[test]
    fn scenario_of_projects_inactive_decisions() {
        let (g, _) = example1();
        let act = g.activation();
        let set = ScenarioSet::enumerate(&g, &act);
        let v0 = DecisionVector::new(vec![0, 0]);
        let v1 = DecisionVector::new(vec![0, 1]);
        let s0 = set.scenario_of(&g, &v0).unwrap();
        let s1 = set.scenario_of(&g, &v1).unwrap();
        // Both project to the same a1 scenario.
        assert_eq!(s0.cube(), s1.cube());
        assert_eq!(s0.cube().len(), 1);
        // Wrong arity yields None.
        assert!(set.scenario_of(&g, &DecisionVector::new(vec![0])).is_none());
    }

    #[test]
    fn cube_prob_sums_matching_scenarios() {
        let (g, [_, _, t3, _, _, _, _, _]) = example1();
        let act = g.activation();
        let set = ScenarioSet::enumerate(&g, &act);
        let probs = BranchProbs::uniform(&g);
        let a2 = Cube::from_literal(crate::condition::Literal::new(t3, 1));
        assert!((set.cube_prob(&a2, &probs) - 0.5).abs() < 1e-12);
        assert!((set.cube_prob(&Cube::top(), &probs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unconditional_graph_has_single_scenario() {
        let mut b = CtgBuilder::new("g");
        let a = b.add_task("a");
        let c = b.add_task("c");
        b.add_edge(a, c, 0.0).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        let act = g.activation();
        let set = ScenarioSet::enumerate(&g, &act);
        assert_eq!(set.len(), 1);
        assert!(set.scenarios()[0].cube().is_top());
        assert!(set.scenarios()[0].is_active(a));
        assert!(set.scenarios()[0].is_active(c));
    }
}
