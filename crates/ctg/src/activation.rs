//! Activation analysis: task activation conditions `X(τ)`, the minterm
//! family `Γ(τ)`, mutual exclusion and implied or-node dependencies.

use crate::condition::{Cube, Dnf, Literal};
use crate::graph::{Ctg, NodeKind};
use crate::id::TaskId;

/// Result of analyzing the activation structure of a [`Ctg`].
///
/// For every task `τ` the analysis computes the activation condition `X(τ)`
/// as a DNF over branch-selection literals, by propagating conditions in
/// topological order:
///
/// * an **and-node** is active when each incoming edge's guard and its
///   source's activation condition hold — the conjunction over predecessors;
/// * an **or-node** is active when at least one incoming dependency fires —
///   the disjunction over predecessors.
///
/// The *raw* DNF keeps all generated cubes (this matches the paper's
/// `Γ(τ8) = {1, a1}` for Example 1) while the *simplified* DNF applies
/// absorption and is used for logical queries such as mutual exclusion.
#[derive(Debug, Clone)]
pub struct Activation {
    x_raw: Vec<Dnf>,
    x: Vec<Dnf>,
    implied_or_deps: Vec<(TaskId, TaskId)>,
}

impl Activation {
    /// Runs the analysis for `ctg`.
    ///
    /// Prefer calling [`Ctg::activation`].
    pub fn analyze(ctg: &Ctg) -> Self {
        let n = ctg.num_tasks();
        let mut x_raw = vec![Dnf::false_(); n];
        let mut x = vec![Dnf::false_(); n];

        for &t in ctg.topological() {
            let ti = t.index();
            let mut in_terms: Vec<(Dnf, Dnf)> = Vec::new(); // (raw, simplified)
            for (_, e) in ctg.in_edges(t) {
                let guard = match e.condition() {
                    Some(alt) => Cube::from_literal(Literal::new(e.src(), alt)),
                    None => Cube::top(),
                };
                let raw = x_raw[e.src().index()].and_cube(&guard);
                let simp = x[e.src().index()].and_cube(&guard).simplified();
                in_terms.push((raw, simp));
            }
            if in_terms.is_empty() {
                x_raw[ti] = Dnf::top();
                x[ti] = Dnf::top();
                continue;
            }
            match ctg.node(t).kind() {
                NodeKind::And => {
                    let mut raw = Dnf::top();
                    let mut simp = Dnf::top();
                    for (r, s) in in_terms {
                        raw = raw.and(&r);
                        simp = simp.and(&s).simplified();
                    }
                    x_raw[ti] = raw;
                    x[ti] = simp;
                }
                NodeKind::Or => {
                    let mut raw = Dnf::false_();
                    let mut simp = Dnf::false_();
                    for (r, s) in in_terms {
                        raw = raw.or(&r);
                        simp = simp.or(&s);
                    }
                    x_raw[ti] = raw;
                    x[ti] = simp.simplified();
                }
            }
        }

        // Implied dependencies (paper Example 1): an or-node cannot commit to
        // skipping a conditional predecessor before the fork nodes deciding
        // that predecessor's activation have executed.
        let mut implied_or_deps = Vec::new();
        for t in ctg.tasks() {
            if ctg.node(t).kind() != NodeKind::Or {
                continue;
            }
            let mut forks: Vec<TaskId> = Vec::new();
            for (_, e) in ctg.in_edges(t) {
                if let Some(_alt) = e.condition() {
                    forks.push(e.src());
                }
                for cube in x_raw[e.src().index()].cubes() {
                    for lit in cube.literals() {
                        forks.push(lit.branch());
                    }
                }
            }
            forks.sort_unstable();
            forks.dedup();
            for f in forks {
                if f != t && !ctg.predecessors(t).any(|p| p == f) {
                    implied_or_deps.push((f, t));
                }
            }
        }

        Activation {
            x_raw,
            x,
            implied_or_deps,
        }
    }

    /// The simplified activation condition `X(τ)`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to the analyzed graph.
    pub fn condition(&self, task: TaskId) -> &Dnf {
        &self.x[task.index()]
    }

    /// The raw (un-absorbed) activation DNF whose cubes form `Γ(τ)`,
    /// the set of minterms the task is associated with.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to the analyzed graph.
    pub fn gamma(&self, task: TaskId) -> &[Cube] {
        self.x_raw[task.index()].cubes()
    }

    /// Whether `task` is unconditionally activated in every run.
    pub fn always_active(&self, task: TaskId) -> bool {
        self.x[task.index()].is_true()
    }

    /// Whether two tasks can never be active in the same run
    /// (`X(τi) ∧ X(τj) = 0`).
    pub fn mutually_exclusive(&self, a: TaskId, b: TaskId) -> bool {
        self.x[a.index()].disjoint(&self.x[b.index()])
    }

    /// Implied `(fork, or_node)` scheduling dependencies: the or-node must
    /// wait for the fork to finish even though no CTG edge connects them.
    pub fn implied_or_deps(&self) -> &[(TaskId, TaskId)] {
        &self.implied_or_deps
    }

    /// Evaluates whether `task` is activated under a complete assignment of
    /// branch alternatives (see [`Cube::eval`] for the `None` convention).
    pub fn is_active<F: Fn(TaskId) -> Option<u8> + Copy>(&self, task: TaskId, alt_of: F) -> bool {
        self.x[task.index()].eval(alt_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;

    /// Example 1 from the paper (Figure 1).
    ///
    /// τ1..τ8 with τ3 forking a1/a2, τ5 forking b1/b2, τ8 an or-node fed by
    /// τ2 (unconditional) and τ4 (active under a1).
    pub(crate) fn example1() -> (Ctg, [TaskId; 8]) {
        let mut b = CtgBuilder::new("example1");
        let t1 = b.add_task("t1");
        let t2 = b.add_task("t2");
        let t3 = b.add_task("t3");
        let t4 = b.add_task("t4");
        let t5 = b.add_task("t5");
        let t6 = b.add_task("t6");
        let t7 = b.add_task("t7");
        let t8 = b.add_task_with_kind("t8", NodeKind::Or);
        b.add_edge(t1, t2, 1.0).unwrap();
        b.add_edge(t1, t3, 1.0).unwrap();
        b.add_cond_edge(t3, t4, 0, 1.0).unwrap(); // a1
        b.add_cond_edge(t3, t5, 1, 1.0).unwrap(); // a2
        b.add_cond_edge(t5, t6, 0, 1.0).unwrap(); // b1
        b.add_cond_edge(t5, t7, 1, 1.0).unwrap(); // b2
        b.add_edge(t2, t8, 1.0).unwrap();
        b.add_edge(t4, t8, 1.0).unwrap();
        let g = b.deadline(100.0).build().unwrap();
        (g, [t1, t2, t3, t4, t5, t6, t7, t8])
    }

    #[test]
    fn example1_activation_conditions() {
        let (g, [t1, t2, t3, t4, t5, t6, t7, t8]) = example1();
        let act = g.activation();
        for t in [t1, t2, t3] {
            assert!(act.always_active(t), "{t} should be unconditional");
        }
        // Γ(τ4)={a1}, Γ(τ5)={a2}, Γ(τ6)={a2 b1}, Γ(τ7)={a2 b2}.
        assert_eq!(act.gamma(t4).len(), 1);
        assert_eq!(act.gamma(t4)[0].to_string(), "t2=0"); // t3 is TaskId 2
        assert_eq!(act.gamma(t5)[0].to_string(), "t2=1");
        assert_eq!(act.gamma(t6)[0].to_string(), "t2=1·t4=0");
        assert_eq!(act.gamma(t7)[0].to_string(), "t2=1·t4=1");
        // Γ(τ8) = {1, a1} (raw keeps both cubes), X(τ8) simplifies to true.
        assert_eq!(act.gamma(t8).len(), 2);
        assert!(act.always_active(t8));
    }

    #[test]
    fn example1_mutual_exclusion() {
        let (g, [_, t2, _, t4, t5, t6, t7, t8]) = example1();
        let act = g.activation();
        assert!(act.mutually_exclusive(t4, t5));
        assert!(act.mutually_exclusive(t4, t6));
        assert!(act.mutually_exclusive(t6, t7));
        assert!(!act.mutually_exclusive(t5, t6));
        assert!(!act.mutually_exclusive(t2, t4));
        assert!(!act.mutually_exclusive(t8, t4));
    }

    #[test]
    fn example1_implied_or_dep() {
        let (g, [_, _, t3, _, _, _, _, t8]) = example1();
        let act = g.activation();
        // τ8 must wait for the fork τ3 (paper: "τ8 must wait until both τ2
        // and τ3 finish").
        assert!(act.implied_or_deps().contains(&(t3, t8)));
        assert_eq!(act.implied_or_deps().len(), 1);
    }

    #[test]
    fn example1_is_active_per_assignment() {
        let (g, [_, _, t3, t4, t5, t6, _, t8]) = example1();
        let act = g.activation();
        // a1 selected, b irrelevant.
        let a1 = |b: TaskId| if b == t3 { Some(0) } else { None };
        assert!(act.is_active(t4, a1));
        assert!(!act.is_active(t5, a1));
        assert!(!act.is_active(t6, a1));
        assert!(act.is_active(t8, a1));
        // a2, b1.
        let a2b1 = |b: TaskId| {
            if b == t3 {
                Some(1)
            } else if b == t5 {
                Some(0)
            } else {
                None
            }
        };
        assert!(!act.is_active(t4, a2b1));
        assert!(act.is_active(t6, a2b1));
        assert!(act.is_active(t8, a2b1));
    }

    #[test]
    fn nested_and_node_conjunction() {
        // Join node depending on two conditional parents from the same fork:
        // active only when both guards hold, i.e. never when guards differ.
        let mut b = CtgBuilder::new("g");
        let f = b.add_task("f");
        let x = b.add_task("x");
        let y = b.add_task("y");
        let j = b.add_task("j");
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        b.add_cond_edge(f, y, 1, 0.0).unwrap();
        b.add_edge(x, j, 0.0).unwrap();
        b.add_edge(y, j, 0.0).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        let act = g.activation();
        // j requires both x (alt 0) and y (alt 1): unsatisfiable.
        assert!(act.condition(j).is_false());
    }

    #[test]
    fn or_join_of_exclusive_branches_is_always_active() {
        let mut b = CtgBuilder::new("g");
        let f = b.add_task("f");
        let x = b.add_task("x");
        let y = b.add_task("y");
        let j = b.add_task_with_kind("j", NodeKind::Or);
        b.add_cond_edge(f, x, 0, 0.0).unwrap();
        b.add_cond_edge(f, y, 1, 0.0).unwrap();
        b.add_edge(x, j, 0.0).unwrap();
        b.add_edge(y, j, 0.0).unwrap();
        let g = b.deadline(1.0).build().unwrap();
        let act = g.activation();
        assert!(!act.condition(j).is_false());
        assert_eq!(act.gamma(j).len(), 2);
        // The or-join is active in every scenario: under alt0 via x, alt1 via y.
        assert!(act.is_active(j, |b| if b == f { Some(0) } else { None }));
        assert!(act.is_active(j, |b| if b == f { Some(1) } else { None }));
        // Implied dep: j waits for fork f.
        assert!(act.implied_or_deps().contains(&(f, j)));
    }
}
