//! Scenario projection: the unconditional task graph one scenario executes.
//!
//! Resolving every branch decision turns a CTG into a plain DAG — the graph
//! a classical (non-conditional) scheduler would see for that run. Useful
//! for analysis, for comparing against non-conditional schedulers, and for
//! visualising single scenarios.

use crate::activation::Activation;
use crate::builder::CtgBuilder;
use crate::graph::{Ctg, NodeKind};
use crate::id::TaskId;
use crate::scenario::Scenario;

/// The result of projecting a CTG onto one scenario.
#[derive(Debug, Clone)]
pub struct Projection {
    /// The unconditional graph of the scenario (and-nodes only, no
    /// conditional edges).
    pub ctg: Ctg,
    /// For each original task, its id in the projected graph (or `None` if
    /// the task is inactive in the scenario).
    pub task_map: Vec<Option<TaskId>>,
}

/// Projects `ctg` onto `scenario`.
///
/// Active tasks keep their names; edges survive when both endpoints are
/// active and the edge's guard (if any) matches the scenario's decision.
/// Or-nodes become plain and-nodes — in a resolved scenario every surviving
/// incoming edge fires.
///
/// ```
/// use ctg_model::{project, CtgBuilder, ScenarioSet};
/// # fn main() -> Result<(), ctg_model::BuildError> {
/// let mut b = CtgBuilder::new("g");
/// let f = b.add_task("fork");
/// let x = b.add_task("x");
/// let y = b.add_task("y");
/// b.add_cond_edge(f, x, 0, 1.0)?;
/// b.add_cond_edge(f, y, 1, 1.0)?;
/// let g = b.deadline(10.0).build()?;
/// let act = g.activation();
/// let scenarios = ScenarioSet::enumerate(&g, &act);
/// let p = project::project(&g, &act, &scenarios.scenarios()[0]);
/// assert_eq!(p.ctg.num_tasks(), 2); // fork + one arm
/// assert_eq!(p.ctg.num_branches(), 0); // fully resolved
/// # Ok(())
/// # }
/// ```
pub fn project(ctg: &Ctg, _act: &Activation, scenario: &Scenario) -> Projection {
    let mut b = CtgBuilder::new(format!("{}@{}", ctg.name(), scenario.cube()));
    let mut task_map = vec![None; ctg.num_tasks()];
    for t in ctg.tasks() {
        if scenario.is_active(t) {
            let new_id = b.add_task_with_kind(ctg.node(t).name(), NodeKind::And);
            task_map[t.index()] = Some(new_id);
        }
    }
    for (_, e) in ctg.edges() {
        let (Some(src), Some(dst)) = (task_map[e.src().index()], task_map[e.dst().index()]) else {
            continue;
        };
        let fires = match e.condition() {
            None => true,
            Some(alt) => scenario.cube().alt_of(e.src()) == Some(alt),
        };
        if fires {
            b.add_edge(src, dst, e.comm_kbytes())
                .expect("projected edges are fresh");
        }
    }
    let projected = b
        .deadline(ctg.deadline())
        .build()
        .expect("a projected scenario is a valid DAG");
    Projection {
        ctg: projected,
        task_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSet;

    fn example1() -> Ctg {
        let mut b = CtgBuilder::new("example1");
        let t1 = b.add_task("t1");
        let t2 = b.add_task("t2");
        let t3 = b.add_task("t3");
        let t4 = b.add_task("t4");
        let t5 = b.add_task("t5");
        let t6 = b.add_task("t6");
        let t7 = b.add_task("t7");
        let t8 = b.add_task_with_kind("t8", NodeKind::Or);
        b.add_edge(t1, t2, 1.0).unwrap();
        b.add_edge(t1, t3, 1.0).unwrap();
        b.add_cond_edge(t3, t4, 0, 1.0).unwrap();
        b.add_cond_edge(t3, t5, 1, 1.0).unwrap();
        b.add_cond_edge(t5, t6, 0, 1.0).unwrap();
        b.add_cond_edge(t5, t7, 1, 1.0).unwrap();
        b.add_edge(t2, t8, 1.0).unwrap();
        b.add_edge(t4, t8, 1.0).unwrap();
        b.deadline(100.0).build().unwrap()
    }

    #[test]
    fn projections_partition_the_task_set() {
        let g = example1();
        let act = g.activation();
        let scenarios = ScenarioSet::enumerate(&g, &act);
        for s in scenarios.scenarios() {
            let p = project(&g, &act, s);
            let active = (0..g.num_tasks()).filter(|&t| s.active_tasks()[t]).count();
            assert_eq!(p.ctg.num_tasks(), active);
            assert_eq!(p.ctg.num_branches(), 0);
            // No conditional edges survive.
            assert!(p.ctg.edges().all(|(_, e)| !e.is_conditional()));
        }
    }

    #[test]
    fn a1_scenario_keeps_the_or_join_dependencies() {
        let g = example1();
        let act = g.activation();
        let scenarios = ScenarioSet::enumerate(&g, &act);
        // The a1 scenario: t1,t2,t3,t4,t8 with t8 fed by t2 and t4.
        let a1 = scenarios
            .scenarios()
            .iter()
            .find(|s| s.cube().len() == 1)
            .unwrap();
        let p = project(&g, &act, a1);
        assert_eq!(p.ctg.num_tasks(), 5);
        let t8_new = p.task_map[7].unwrap();
        assert_eq!(p.ctg.predecessors(t8_new).count(), 2);
        // Deadline carried over.
        assert_eq!(p.ctg.deadline(), 100.0);
    }

    #[test]
    fn task_map_is_consistent() {
        let g = example1();
        let act = g.activation();
        let scenarios = ScenarioSet::enumerate(&g, &act);
        for s in scenarios.scenarios() {
            let p = project(&g, &act, s);
            for t in g.tasks() {
                match p.task_map[t.index()] {
                    Some(new_id) => {
                        assert!(s.is_active(t));
                        assert_eq!(p.ctg.node(new_id).name(), g.node(t).name());
                    }
                    None => assert!(!s.is_active(t)),
                }
            }
        }
    }
}
