//! Condition algebra over branch-selection literals.
//!
//! Runtime conditions in a CTG are boolean functions of the alternatives
//! selected by branch fork nodes. We represent them in disjunctive normal
//! form: a [`Dnf`] is a disjunction of [`Cube`]s, and a cube is a conjunction
//! of [`Literal`]s, each literal asserting "branch fork node *b* selected
//! alternative *a*".
//!
//! Two literals on the same branch node with different alternatives are
//! contradictory, which is what makes conjunction ([`Cube::and`]) partial and
//! gives rise to the mutual-exclusion test used by the scheduler.

use crate::id::TaskId;
use crate::probability::BranchProbs;
use std::fmt;

/// A single branch-selection assertion: branch fork node `branch` selects
/// alternative `alt`.
///
/// ```
/// use ctg_model::{Literal, TaskId};
/// let a1 = Literal::new(TaskId::new(3), 0);
/// let a2 = Literal::new(TaskId::new(3), 1);
/// assert!(a1.contradicts(a2));
/// assert!(!a1.contradicts(a1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    branch: TaskId,
    alt: u8,
}

impl Literal {
    /// Creates a literal asserting that `branch` selects alternative `alt`.
    pub fn new(branch: TaskId, alt: u8) -> Self {
        Literal { branch, alt }
    }

    /// The branch fork node this literal constrains.
    pub fn branch(self) -> TaskId {
        self.branch
    }

    /// The asserted alternative index.
    pub fn alt(self) -> u8 {
        self.alt
    }

    /// Returns `true` when the two literals constrain the same branch to
    /// different alternatives and can therefore never hold together.
    pub fn contradicts(self, other: Literal) -> bool {
        self.branch == other.branch && self.alt != other.alt
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.branch, self.alt)
    }
}

/// A conjunction of literals, with at most one literal per branch node.
///
/// The empty cube is the constant *true* (the paper's minterm "1").
/// Literals are kept sorted by branch id so equal cubes compare equal.
///
/// ```
/// use ctg_model::{Cube, Literal, TaskId};
/// let b = TaskId::new(0);
/// let c1 = Cube::from_literal(Literal::new(b, 0));
/// let c2 = Cube::from_literal(Literal::new(b, 1));
/// assert!(c1.and(&c2).is_none()); // contradictory
/// assert!(Cube::top().implies(&Cube::top()));
/// assert!(c1.implies(&Cube::top()));
/// assert!(!Cube::top().implies(&c1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cube {
    literals: Vec<Literal>,
}

impl Cube {
    /// The constant-true cube (empty conjunction).
    pub fn top() -> Self {
        Cube::default()
    }

    /// A cube consisting of a single literal.
    pub fn from_literal(lit: Literal) -> Self {
        Cube {
            literals: vec![lit],
        }
    }

    /// Builds a cube from an iterator of literals.
    ///
    /// Returns `None` when two literals contradict each other.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(lits: I) -> Option<Self> {
        let mut cube = Cube::top();
        for lit in lits {
            cube = cube.with(lit)?;
        }
        Some(cube)
    }

    /// Returns this cube extended with `lit`, or `None` on contradiction.
    pub fn with(&self, lit: Literal) -> Option<Self> {
        match self
            .literals
            .binary_search_by_key(&lit.branch(), |l| l.branch())
        {
            Ok(pos) => {
                if self.literals[pos].alt() == lit.alt() {
                    Some(self.clone())
                } else {
                    None
                }
            }
            Err(pos) => {
                let mut lits = self.literals.clone();
                lits.insert(pos, lit);
                Some(Cube { literals: lits })
            }
        }
    }

    /// Conjunction of two cubes, `None` when contradictory.
    pub fn and(&self, other: &Cube) -> Option<Cube> {
        let mut cube = self.clone();
        for &lit in &other.literals {
            cube = cube.with(lit)?;
        }
        Some(cube)
    }

    /// Returns `true` when this cube logically implies `other`
    /// (i.e. every literal of `other` also appears here).
    pub fn implies(&self, other: &Cube) -> bool {
        other
            .literals
            .iter()
            .all(|lit| self.alt_of(lit.branch()) == Some(lit.alt()))
    }

    /// The alternative this cube asserts for `branch`, if any.
    pub fn alt_of(&self, branch: TaskId) -> Option<u8> {
        self.literals
            .binary_search_by_key(&branch, |l| l.branch())
            .ok()
            .map(|pos| self.literals[pos].alt())
    }

    /// Whether this is the constant-true cube.
    pub fn is_top(&self) -> bool {
        self.literals.is_empty()
    }

    /// The literals of this cube in branch-id order.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Number of literals in the cube.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether the cube has no literals (equivalent to [`Cube::is_top`]).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Evaluates the cube under a complete assignment `alt_of(branch)`.
    ///
    /// The closure must return the selected alternative for every branch that
    /// appears in the cube; branches whose selection is undefined (because the
    /// fork node is not activated) should be reported as `None`, which makes
    /// the cube evaluate to `false`.
    pub fn eval<F: Fn(TaskId) -> Option<u8>>(&self, alt_of: F) -> bool {
        self.literals
            .iter()
            .all(|lit| alt_of(lit.branch()) == Some(lit.alt()))
    }

    /// Probability of the cube under independent branch probabilities:
    /// the product of the probability of each asserted alternative.
    ///
    /// This matches the paper's usage (e.g. `prob(a2·b1) = prob(a2)·prob(b1)`).
    pub fn probability(&self, probs: &BranchProbs) -> f64 {
        self.literals
            .iter()
            .map(|lit| probs.prob(lit.branch(), lit.alt()))
            .product()
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            return write!(f, "1");
        }
        let mut first = true;
        for lit in &self.literals {
            if !first {
                write!(f, "·")?;
            }
            write!(f, "{lit}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Literal> for Option<Cube> {
    fn from_iter<I: IntoIterator<Item = Literal>>(iter: I) -> Self {
        Cube::from_literals(iter)
    }
}

/// A disjunction of cubes — the general representation of an activation
/// condition `X(τ)`.
///
/// The empty DNF is the constant *false*; a DNF containing the top cube is
/// the constant *true*.
///
/// ```
/// use ctg_model::{Cube, Dnf, Literal, TaskId};
/// let b = TaskId::new(0);
/// let a1 = Cube::from_literal(Literal::new(b, 0));
/// let a2 = Cube::from_literal(Literal::new(b, 1));
/// let x = Dnf::from_cubes([a1.clone()]);
/// let y = Dnf::from_cubes([a2]);
/// assert!(x.and(&y).is_false()); // mutually exclusive
/// assert!(!x.and(&Dnf::top()).is_false());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dnf {
    cubes: Vec<Cube>,
}

impl Dnf {
    /// The constant-false DNF (empty disjunction).
    pub fn false_() -> Self {
        Dnf::default()
    }

    /// The constant-true DNF (single top cube).
    pub fn top() -> Self {
        Dnf {
            cubes: vec![Cube::top()],
        }
    }

    /// Builds a DNF from cubes, deduplicating but *not* absorbing.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(cubes: I) -> Self {
        let mut dnf = Dnf::false_();
        for c in cubes {
            dnf.push(c);
        }
        dnf
    }

    /// Adds a cube (deduplicating exact repeats, no absorption).
    pub fn push(&mut self, cube: Cube) {
        if !self.cubes.contains(&cube) {
            self.cubes.push(cube);
        }
    }

    /// Disjunction of two DNFs (deduplicating, no absorption).
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut out = self.clone();
        for c in &other.cubes {
            out.push(c.clone());
        }
        out
    }

    /// Conjunction of two DNFs by cube-wise distribution; contradictory
    /// products are dropped.
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut out = Dnf::false_();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.and(b) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Conjunction with a single cube.
    pub fn and_cube(&self, cube: &Cube) -> Dnf {
        let mut out = Dnf::false_();
        for a in &self.cubes {
            if let Some(c) = a.and(cube) {
                out.push(c);
            }
        }
        out
    }

    /// Returns an absorption-simplified copy: any cube implied by a more
    /// general cube in the same DNF is removed.
    ///
    /// For instance `1 ∨ a1` simplifies to `1`.
    pub fn simplified(&self) -> Dnf {
        let mut keep: Vec<Cube> = Vec::new();
        // Sort by literal count so general cubes are considered first.
        let mut cubes = self.cubes.clone();
        cubes.sort_by_key(|c| c.len());
        'outer: for c in cubes {
            for k in &keep {
                if c.implies(k) {
                    continue 'outer;
                }
            }
            keep.push(c);
        }
        keep.sort();
        Dnf { cubes: keep }
    }

    /// Whether this DNF is the constant false.
    pub fn is_false(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Whether this DNF is trivially true (contains the top cube).
    pub fn is_true(&self) -> bool {
        self.cubes.iter().any(Cube::is_top)
    }

    /// The cubes of this DNF.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Evaluates the DNF under a complete assignment (see [`Cube::eval`]).
    pub fn eval<F: Fn(TaskId) -> Option<u8> + Copy>(&self, alt_of: F) -> bool {
        self.cubes.iter().any(|c| c.eval(alt_of))
    }

    /// Returns `true` when the conjunction with `other` is unsatisfiable,
    /// i.e. the two conditions are mutually exclusive.
    pub fn disjoint(&self, other: &Dnf) -> bool {
        self.and(other).is_false()
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "0");
        }
        let mut first = true;
        for c in &self.cubes {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Dnf {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Dnf::from_cubes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(b: usize, a: u8) -> Literal {
        Literal::new(TaskId::new(b), a)
    }

    #[test]
    fn literal_contradiction() {
        assert!(lit(1, 0).contradicts(lit(1, 1)));
        assert!(!lit(1, 0).contradicts(lit(2, 1)));
        assert!(!lit(1, 0).contradicts(lit(1, 0)));
    }

    #[test]
    fn cube_with_keeps_sorted_and_detects_contradiction() {
        let c = Cube::from_literals([lit(3, 1), lit(1, 0)]).unwrap();
        assert_eq!(c.literals()[0], lit(1, 0));
        assert_eq!(c.literals()[1], lit(3, 1));
        assert!(c.with(lit(3, 0)).is_none());
        assert_eq!(c.with(lit(3, 1)).unwrap(), c);
    }

    #[test]
    fn cube_and_implies() {
        let a1 = Cube::from_literal(lit(0, 0));
        let b1 = Cube::from_literal(lit(1, 0));
        let both = a1.and(&b1).unwrap();
        assert!(both.implies(&a1));
        assert!(both.implies(&b1));
        assert!(!a1.implies(&both));
        assert!(both.implies(&Cube::top()));
    }

    #[test]
    fn cube_eval() {
        let c = Cube::from_literals([lit(0, 1), lit(1, 0)]).unwrap();
        assert!(c.eval(|b| if b.index() == 0 { Some(1) } else { Some(0) }));
        assert!(!c.eval(|_| Some(0)));
        // Unassigned branch makes the cube false.
        assert!(!c.eval(|b| if b.index() == 0 { Some(1) } else { None }));
        assert!(Cube::top().eval(|_| None));
    }

    #[test]
    fn dnf_and_distributes_and_drops_contradictions() {
        let a1 = Dnf::from_cubes([Cube::from_literal(lit(0, 0))]);
        let a2 = Dnf::from_cubes([Cube::from_literal(lit(0, 1))]);
        assert!(a1.and(&a2).is_false());
        assert!(a1.disjoint(&a2));
        let t = Dnf::top();
        assert_eq!(a1.and(&t), a1);
    }

    #[test]
    fn dnf_simplify_absorbs() {
        let raw = Dnf::from_cubes([Cube::top(), Cube::from_literal(lit(0, 0))]);
        let s = raw.simplified();
        assert_eq!(s.cubes().len(), 1);
        assert!(s.is_true());
        // Raw keeps both, matching the paper's Γ(τ8) = {1, a1}.
        assert_eq!(raw.cubes().len(), 2);
    }

    #[test]
    fn dnf_or_dedups() {
        let a = Dnf::from_cubes([Cube::from_literal(lit(0, 0))]);
        let b = a.or(&a);
        assert_eq!(b.cubes().len(), 1);
    }

    #[test]
    fn dnf_eval_any_cube() {
        let d = Dnf::from_cubes([Cube::from_literal(lit(0, 0)), Cube::from_literal(lit(1, 1))]);
        assert!(d.eval(|_| Some(0)));
        assert!(d.eval(|_| Some(1)));
        assert!(!d.eval(|b| if b.index() == 0 { Some(1) } else { Some(0) }));
        assert!(!Dnf::false_().eval(|_| Some(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cube::top().to_string(), "1");
        assert_eq!(Dnf::false_().to_string(), "0");
        let c = Cube::from_literals([lit(3, 0), lit(5, 1)]).unwrap();
        assert_eq!(c.to_string(), "t3=0·t5=1");
    }
}
