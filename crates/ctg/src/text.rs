//! A small line-based text format for conditional task graphs.
//!
//! Graphs can be exported with [`to_text`] and re-read with [`from_text`],
//! making it easy to version-control workloads or hand-edit generated ones.
//!
//! ```text
//! # optional comments
//! graph example deadline 60
//! task sense
//! task decide
//! task heavy
//! task light or        # "or" selects disjunctive activation
//! edge sense decide comm 0.5
//! edge decide heavy comm 2 cond 0
//! edge decide light comm 0.5 cond 1
//! ```

use crate::builder::CtgBuilder;
use crate::error::BuildError;
use crate::graph::{Ctg, NodeKind};
use crate::id::TaskId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseTextError {
    /// Malformed line with its 1-based number and a description.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed graph failed validation.
    Build(BuildError),
}

impl fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTextError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseTextError::Build(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseTextError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTextError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ParseTextError {
    fn from(e: BuildError) -> Self {
        ParseTextError::Build(e)
    }
}

/// Renders `ctg` in the text format.
pub fn to_text(ctg: &Ctg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "graph {} deadline {}", ctg.name(), ctg.deadline());
    for t in ctg.tasks() {
        let node = ctg.node(t);
        match node.kind() {
            NodeKind::And => {
                let _ = writeln!(s, "task {}", node.name());
            }
            NodeKind::Or => {
                let _ = writeln!(s, "task {} or", node.name());
            }
        }
    }
    for (_, e) in ctg.edges() {
        let src = ctg.node(e.src()).name();
        let dst = ctg.node(e.dst()).name();
        match e.condition() {
            Some(alt) => {
                let _ = writeln!(s, "edge {src} {dst} comm {} cond {alt}", e.comm_kbytes());
            }
            None => {
                let _ = writeln!(s, "edge {src} {dst} comm {}", e.comm_kbytes());
            }
        }
    }
    s
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// Returns [`ParseTextError::Syntax`] for malformed lines (unknown keyword,
/// missing fields, duplicate or unknown task names) and
/// [`ParseTextError::Build`] when the assembled graph fails validation.
pub fn from_text(input: &str) -> Result<Ctg, ParseTextError> {
    let mut builder: Option<CtgBuilder> = None;
    let mut deadline = 1.0_f64;
    let mut names: HashMap<String, TaskId> = HashMap::new();

    let syntax = |line: usize, message: &str| ParseTextError::Syntax {
        line,
        message: message.to_string(),
    };

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("graph") => {
                let name = parts
                    .next()
                    .ok_or_else(|| syntax(line_no, "graph needs a name"))?;
                match (parts.next(), parts.next()) {
                    (Some("deadline"), Some(d)) => {
                        deadline = d
                            .parse()
                            .map_err(|_| syntax(line_no, "invalid deadline value"))?;
                    }
                    (None, _) => {}
                    _ => return Err(syntax(line_no, "expected `deadline <value>`")),
                }
                builder = Some(CtgBuilder::new(name));
            }
            Some("task") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax(line_no, "`graph` line must come first"))?;
                let name = parts
                    .next()
                    .ok_or_else(|| syntax(line_no, "task needs a name"))?;
                if names.contains_key(name) {
                    return Err(syntax(line_no, "duplicate task name"));
                }
                let kind = match parts.next() {
                    None => NodeKind::And,
                    Some("or") => NodeKind::Or,
                    Some(other) => {
                        return Err(syntax(line_no, &format!("unknown task kind `{other}`")))
                    }
                };
                let id = b.add_task_with_kind(name, kind);
                names.insert(name.to_string(), id);
            }
            Some("edge") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax(line_no, "`graph` line must come first"))?;
                let src = parts
                    .next()
                    .and_then(|n| names.get(n))
                    .copied()
                    .ok_or_else(|| syntax(line_no, "unknown source task"))?;
                let dst = parts
                    .next()
                    .and_then(|n| names.get(n))
                    .copied()
                    .ok_or_else(|| syntax(line_no, "unknown destination task"))?;
                let mut comm = 0.0_f64;
                let mut cond: Option<u8> = None;
                while let Some(key) = parts.next() {
                    let value = parts
                        .next()
                        .ok_or_else(|| syntax(line_no, &format!("`{key}` needs a value")))?;
                    match key {
                        "comm" => {
                            comm = value
                                .parse()
                                .map_err(|_| syntax(line_no, "invalid comm value"))?;
                        }
                        "cond" => {
                            cond = Some(
                                value
                                    .parse()
                                    .map_err(|_| syntax(line_no, "invalid cond value"))?,
                            );
                        }
                        other => return Err(syntax(line_no, &format!("unknown key `{other}`"))),
                    }
                }
                let result = match cond {
                    Some(alt) => b.add_cond_edge(src, dst, alt, comm),
                    None => b.add_edge(src, dst, comm),
                };
                result.map_err(ParseTextError::Build)?;
            }
            Some(other) => {
                return Err(syntax(line_no, &format!("unknown keyword `{other}`")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }

    let mut b = builder.ok_or_else(|| syntax(0, "missing `graph` line"))?;
    Ok(b.deadline(deadline).build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtgBuilder;

    fn sample() -> Ctg {
        let mut b = CtgBuilder::new("sample");
        let s = b.add_task("sense");
        let d = b.add_task("decide");
        let h = b.add_task("heavy");
        let l = b.add_task("light");
        let j = b.add_task_with_kind("join", NodeKind::Or);
        b.add_edge(s, d, 0.5).unwrap();
        b.add_cond_edge(d, h, 0, 2.0).unwrap();
        b.add_cond_edge(d, l, 1, 0.5).unwrap();
        b.add_edge(h, j, 1.0).unwrap();
        b.add_edge(l, j, 1.0).unwrap();
        b.deadline(60.0).build().unwrap()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let text = to_text(&g);
        let back = from_text(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text =
            "\n# header\ngraph g deadline 10\ntask a # trailing\ntask b\nedge a b comm 1.5\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.deadline(), 10.0);
        assert_eq!(g.edges().next().unwrap().1.comm_kbytes(), 1.5);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let cases = [
            ("task a", "`graph` line must come first"),
            ("graph g\nbogus x", "unknown keyword"),
            ("graph g\ntask a\ntask a", "duplicate task name"),
            ("graph g\ntask a\nedge a z comm 1", "unknown destination"),
            ("graph g\ntask a weird", "unknown task kind"),
            ("graph g deadline abc", "invalid deadline"),
            (
                "graph g\ntask a\ntask b\nedge a b comm",
                "`comm` needs a value",
            ),
        ];
        for (text, needle) in cases {
            let err = from_text(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` → `{err}` missing `{needle}`"
            );
        }
    }

    #[test]
    fn build_errors_propagate() {
        // Cycle.
        let text = "graph g\ntask a\ntask b\nedge a b comm 1\nedge b a comm 1";
        assert!(matches!(
            from_text(text),
            Err(ParseTextError::Build(BuildError::Cyclic))
        ));
    }

    #[test]
    fn or_kind_roundtrips() {
        let g = sample();
        let text = to_text(&g);
        assert!(text.contains("task join or"));
        let back = from_text(&text).unwrap();
        let join = back
            .tasks()
            .find(|&t| back.node(t).name() == "join")
            .unwrap();
        assert_eq!(back.node(join).kind(), NodeKind::Or);
    }
}
