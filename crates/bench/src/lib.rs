//! Shared harness for regenerating the paper's tables and figures.
//!
//! One binary per experiment:
//!
//! | Binary    | Paper artefact |
//! |-----------|----------------|
//! | `table1`  | Table 1 — online vs. reference algorithms 1/2 on 5 random CTGs (plus runtimes) |
//! | `fig4`    | Figure 4 — branch selection, windowed probability, threshold-filtered probability |
//! | `fig5`    | Figure 5 + Table 2 — MPEG energy for 8 movies, adaptive vs. online, call counts |
//! | `table3`  | Table 3 — cruise-controller energy, 3 road sequences |
//! | `table45` | Tables 4 & 5 — biased-profile online vs. adaptive on 10 random CTGs |
//! | `fig6`    | Figure 6 — ideal-profile online vs. adaptive (threshold 0.5) |
//!
//! Criterion benches (`cargo bench -p ctg-bench`) quantify the runtime gap
//! between the online heuristic and the NLP-based reference algorithm 2
//! (the paper's ~120 000× claim).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod setup;
