//! Solver-latency bench — cold (from-scratch [`OnlineScheduler::solve`])
//! vs warm ([`SolverWorkspace`]) re-solve latency over the probability
//! tables an adaptive MPEG run actually re-schedules on (perf extension;
//! not a paper table).
//!
//! The table sequence is harvested by replaying a drifting MPEG trace
//! through an [`AdaptiveScheduler`] and recording every adopted table, so
//! consecutive tables differ exactly as much as real drift makes them
//! differ. Each rep then solves the whole sequence twice: once cold (a
//! fresh solve per table) and once warm (one workspace carried across the
//! sequence, fresh per rep — the first solve of a rep pays the full level
//! build, exactly like a freshly constructed manager). Every warm solution
//! is asserted **bit-for-bit identical** to its cold counterpart before any
//! number is reported.
//!
//! Pass `--smoke` for a seconds-scale run (CI); numbers land in
//! `BENCH_solver.json`.

use std::time::Instant;

use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_model::BranchProbs;
use ctg_sched::{AdaptiveScheduler, OnlineScheduler, SolverWorkspace};
use ctg_workloads::traces;

const WINDOW: usize = 20;
const THRESHOLD: f64 = 0.1;

/// Latency summary of one pass, in microseconds.
struct Lat {
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    total_s: f64,
}

fn summarize(mut samples: Vec<f64>) -> Lat {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| {
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx] * 1e6
    };
    let total: f64 = samples.iter().sum();
    Lat {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mean_us: total * 1e6 / samples.len() as f64,
        total_s: total,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (segment_len, tiles, reps) = if smoke { (200, 10, 1) } else { (500, 20, 3) };

    let ctx = prepare_mpeg(2.0);
    let movie = &traces::movie_presets()[1]; // Bike: strong scene drift
    let segment = traces::generate_trace(ctx.ctg(), &movie.profile, segment_len);
    let profiled = profile_trace(&ctx, &segment);

    // ---- Harvest the tables an adaptive run re-schedules on. ----
    let mut mgr =
        AdaptiveScheduler::new(&ctx, profiled.clone(), WINDOW, THRESHOLD).expect("manager builds");
    let mut tables: Vec<BranchProbs> = vec![profiled.clone()];
    for _ in 0..tiles {
        for v in &segment {
            if mgr.observe(&ctx, v).expect("observe succeeds") {
                tables.push(mgr.current_probs().clone());
            }
        }
    }
    assert!(
        tables.len() >= 10,
        "drift must trigger enough re-schedules to time ({} tables)",
        tables.len()
    );

    let online = OnlineScheduler::new();
    let mut cold_samples = Vec::with_capacity(tables.len() * reps);
    let mut warm_samples = Vec::with_capacity(tables.len() * reps);
    let mut last_stats = None;
    for _ in 0..reps {
        // Cold: every table solved from scratch.
        let mut cold_solutions = Vec::with_capacity(tables.len());
        for probs in &tables {
            let t0 = Instant::now();
            let sol = online.solve(&ctx, probs).expect("cold solve");
            cold_samples.push(t0.elapsed().as_secs_f64());
            cold_solutions.push(sol);
        }

        // Warm: one workspace across the sequence (fresh per rep).
        let mut ws = SolverWorkspace::new();
        for (probs, cold) in tables.iter().zip(&cold_solutions) {
            let t0 = Instant::now();
            let sol = online
                .solve_with_workspace(&ctx, probs, &mut ws)
                .expect("warm solve");
            warm_samples.push(t0.elapsed().as_secs_f64());
            assert_eq!(cold.schedule, sol.schedule, "warm schedule must match");
            for t in ctx.ctg().tasks() {
                assert_eq!(
                    cold.speeds.speed(t).to_bits(),
                    sol.speeds.speed(t).to_bits(),
                    "warm speed bits must match for task {t}"
                );
            }
            assert_eq!(
                cold.expected_energy(&ctx, probs).to_bits(),
                sol.expected_energy(&ctx, probs).to_bits(),
                "warm energy bits must match"
            );
        }
        last_stats = Some(ws.stats());
    }

    let cold = summarize(cold_samples);
    let warm = summarize(warm_samples);
    let speedup_total = cold.total_s / warm.total_s;
    let stats = last_stats.expect("at least one rep ran");

    // ---- Report. ----
    println!(
        "solver latency on mpeg/{} ({} tables x {reps} reps, adaptive drift):\n",
        movie.name,
        tables.len()
    );
    let fmt = |label: &str, l: &Lat| {
        println!(
            "{label:<6} p50 {:>9.1} us   p99 {:>9.1} us   mean {:>9.1} us   total {:.4} s",
            l.p50_us, l.p99_us, l.mean_us, l.total_s
        );
    };
    fmt("cold", &cold);
    fmt("warm", &warm);
    println!("\nwarm speedup (total cold / total warm): {speedup_total:.2}x");
    println!(
        "workspace: {} solves, {} memo hits, {} full level builds, {} dirty updates \
         ({} levels recomputed), {} graph reuses / {} rebuilds",
        stats.solves,
        stats.memo_hits,
        stats.full_level_rebuilds,
        stats.dirty_level_updates,
        stats.levels_recomputed,
        stats.graph_reuses,
        stats.graph_rebuilds
    );
    println!("equivalence: PASS (every warm solution bit-identical to cold)");

    // ---- Hand-rolled JSON artifact. ----
    let lat_json = |l: &Lat| {
        format!(
            "{{\"p50_us\": {:.3}, \"p99_us\": {:.3}, \"mean_us\": {:.3}, \"total_s\": {:.6}}}",
            l.p50_us, l.p99_us, l.mean_us, l.total_s
        )
    };
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"mpeg/{}\",\n  \"tables\": {},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n",
        movie.name,
        tables.len()
    ));
    json.push_str(&format!("  \"cold\": {},\n", lat_json(&cold)));
    json.push_str(&format!("  \"warm\": {},\n", lat_json(&warm)));
    json.push_str(&format!("  \"speedup_total\": {speedup_total:.4},\n"));
    json.push_str(&format!(
        "  \"workspace\": {{\"solves\": {}, \"memo_hits\": {}, \"full_level_rebuilds\": {}, \
         \"dirty_level_updates\": {}, \"levels_recomputed\": {}, \"graph_reuses\": {}, \
         \"graph_rebuilds\": {}, \"rebinds\": {}}},\n",
        stats.solves,
        stats.memo_hits,
        stats.full_level_rebuilds,
        stats.dirty_level_updates,
        stats.levels_recomputed,
        stats.graph_reuses,
        stats.graph_rebuilds,
        stats.rebinds
    ));
    json.push_str("  \"equivalence\": \"pass\"\n}\n");
    std::fs::write("BENCH_solver.json", json).expect("write BENCH_solver.json");
    println!("wrote BENCH_solver.json");
}
