//! Solver-latency bench — cold (from-scratch [`OnlineScheduler::solve`])
//! vs warm ([`SolverWorkspace`]) vs near-memo (warm workspace with the
//! quantised near-miss memo enabled, as the adaptive manager runs it)
//! re-solve latency over the probability tables an adaptive MPEG run
//! actually re-schedules on (perf extension; not a paper table).
//!
//! The table sequence is harvested by replaying a drifting MPEG trace
//! through an [`AdaptiveScheduler`] and recording every adopted table, so
//! consecutive tables differ exactly as much as real drift makes them
//! differ — and, like real drift, most adopted tables are exact revisits
//! of an earlier operating point, which is what the near-miss column
//! exploits. Each rep solves the whole sequence three times: cold (a
//! fresh solve per table), warm (one plain workspace), and near (the same
//! plus the near-miss memo at the manager's drift threshold). The warm
//! and near workspaces are **primed with one untimed pass first**: the
//! columns report the steady state a long-running manager sits in (every
//! warm solve answered by the graph pool, every near solve replayed from
//! the memo) — the first-visit cost of a table is the cold column, and
//! the rebuild path's stage split is in the instrumented breakdown below.
//! Every warm and near solution is asserted **bit-for-bit identical** to
//! its cold counterpart before any number is reported.
//!
//! A final instrumented warm pass records per-stage spans (`dls_map`,
//! `path_enum`, `stretch`) through the telemetry layer for the stage
//! breakdown; the timed passes run with telemetry disabled.
//!
//! Pass `--smoke` for a seconds-scale run (CI) — numbers then land in
//! `target/BENCH_solver_smoke.json` instead of `BENCH_solver.json`. Pass
//! `--check-baseline <path>` to compare against a committed artifact: the
//! run fails if its warm p99 regresses more than 2x over the baseline's.

use std::sync::Arc;
use std::time::Instant;

use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_model::BranchProbs;
use ctg_obs::{BufferedSink, EventKind, Obs, Stage};
use ctg_sched::{
    race_portfolio, AdaptiveScheduler, OnlineScheduler, SchedulerKind, Solution, SolverWorkspace,
    DEFAULT_PORTFOLIO,
};
use ctg_workloads::traces;

const WINDOW: usize = 20;
const THRESHOLD: f64 = 0.1;
/// Near-memo capacity: comfortably above the distinct adopted operating
/// points of the harvested drift run (the full MPEG harvest cycles
/// through roughly a hundred per tile; an LRU smaller than the cycle
/// thrashes and never replays).
const NEAR_CAP: usize = 256;

/// Latency summary of one pass, in microseconds.
struct Lat {
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    total_s: f64,
}

fn summarize(mut samples: Vec<f64>) -> Lat {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| {
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx] * 1e6
    };
    let total: f64 = samples.iter().sum();
    Lat {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mean_us: total * 1e6 / samples.len() as f64,
        total_s: total,
    }
}

/// Mean duration and count of one solver stage across a recorded pass.
struct StageLat {
    mean_us: f64,
    count: usize,
}

fn assert_bit_identical(
    ctx: &ctg_sched::SchedContext,
    probs: &BranchProbs,
    cold: &Solution,
    sol: &Solution,
    label: &str,
) {
    assert_eq!(cold.schedule, sol.schedule, "{label}: schedule must match");
    for t in ctx.ctg().tasks() {
        assert_eq!(
            cold.speeds.speed(t).to_bits(),
            sol.speeds.speed(t).to_bits(),
            "{label}: speed bits must match for task {t}"
        );
    }
    assert_eq!(
        cold.expected_energy(ctx, probs).to_bits(),
        sol.expected_energy(ctx, probs).to_bits(),
        "{label}: energy bits must match"
    );
}

/// Pulls `"p99_us"` out of the `"warm"` object of a bench artifact without
/// a JSON parser (the artifact is hand-rolled; the layout is ours).
fn baseline_warm_p99(json: &str) -> Option<f64> {
    let warm = json.split("\"warm\"").nth(1)?;
    let after = warm.split("\"p99_us\":").nth(1)?;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_path = args
        .iter()
        .position(|a| a == "--check-baseline")
        .map(|i| args.get(i + 1).expect("--check-baseline needs a path"));
    let (segment_len, tiles, reps) = if smoke { (200, 10, 1) } else { (500, 20, 3) };

    let ctx = prepare_mpeg(2.0);
    let movie = &traces::movie_presets()[1]; // Bike: strong scene drift
    let segment = traces::generate_trace(ctx.ctg(), &movie.profile, segment_len);
    let profiled = profile_trace(&ctx, &segment);

    // ---- Harvest the tables an adaptive run re-schedules on. ----
    let mut mgr =
        AdaptiveScheduler::new(&ctx, profiled.clone(), WINDOW, THRESHOLD).expect("manager builds");
    let mut tables: Vec<BranchProbs> = vec![profiled.clone()];
    for _ in 0..tiles {
        for v in &segment {
            if mgr.observe(&ctx, v).expect("observe succeeds") {
                tables.push(mgr.current_probs().clone());
            }
        }
    }
    assert!(
        tables.len() >= 10,
        "drift must trigger enough re-schedules to time ({} tables)",
        tables.len()
    );

    let online = OnlineScheduler::new();
    let mut cold_samples = Vec::with_capacity(tables.len() * reps);
    let mut warm_samples = Vec::with_capacity(tables.len() * reps);
    let mut near_samples = Vec::with_capacity(tables.len() * reps);
    let mut race_samples = Vec::with_capacity(tables.len() * reps);
    let mut warm_stats = None;
    let mut near_stats = None;
    let mut race_wins = [0usize; SchedulerKind::COUNT];
    let mut race_energy_ratio_sum = 0.0;
    let mut race_energy_ratio_n = 0usize;
    for _ in 0..reps {
        // Cold: every table solved from scratch.
        let mut cold_solutions = Vec::with_capacity(tables.len());
        for probs in &tables {
            let t0 = Instant::now();
            let sol = online.solve(&ctx, probs).expect("cold solve");
            cold_samples.push(t0.elapsed().as_secs_f64());
            cold_solutions.push(sol);
        }

        // Warm: one plain workspace, primed with an untimed pass so the
        // timed pass measures the steady state (graph pool populated,
        // levels warm). Consecutive tables always differ, so no timed
        // solve is a trivial memo hit.
        let mut ws = SolverWorkspace::new();
        for probs in &tables {
            online
                .solve_with_workspace(&ctx, probs, &mut ws)
                .expect("warm priming solve");
        }
        for (probs, cold) in tables.iter().zip(&cold_solutions) {
            let t0 = Instant::now();
            let sol = online
                .solve_with_workspace(&ctx, probs, &mut ws)
                .expect("warm solve");
            warm_samples.push(t0.elapsed().as_secs_f64());
            assert_bit_identical(&ctx, probs, cold, &sol, "warm");
        }
        warm_stats = Some(ws.stats());

        // Near: the workspace configuration the adaptive manager runs —
        // the near-miss memo at the drift threshold — primed the same
        // way. Revisited operating points replay instead of re-running
        // the pipeline; every replay is still asserted bit-identical to
        // cold.
        let mut ws = SolverWorkspace::new();
        ws.set_near_memo(THRESHOLD, NEAR_CAP);
        for probs in &tables {
            online
                .solve_with_workspace(&ctx, probs, &mut ws)
                .expect("near priming solve");
        }
        for (probs, cold) in tables.iter().zip(&cold_solutions) {
            let t0 = Instant::now();
            let sol = online
                .solve_with_workspace(&ctx, probs, &mut ws)
                .expect("near solve");
            near_samples.push(t0.elapsed().as_secs_f64());
            assert_bit_identical(&ctx, probs, cold, &sol, "near");
        }
        near_stats = Some(ws.stats());

        // Portfolio: race DLS/HEFT/lookahead on every table, per-entry
        // workspaces (warm-layer keys carry no scheduler identity, so
        // entries never share state), primed like the warm pass. The
        // winner is asserted never worse than the cold (DLS) plan.
        let mut wss: Vec<SolverWorkspace> = DEFAULT_PORTFOLIO
            .iter()
            .map(|_| SolverWorkspace::new())
            .collect();
        for probs in &tables {
            race_portfolio(
                &DEFAULT_PORTFOLIO,
                &ctx,
                probs,
                &mut wss,
                1,
                &Obs::disabled(),
                0,
            )
            .expect("race priming solve");
        }
        for (probs, cold) in tables.iter().zip(&cold_solutions) {
            let t0 = Instant::now();
            let outcome = race_portfolio(
                &DEFAULT_PORTFOLIO,
                &ctx,
                probs,
                &mut wss,
                1,
                &Obs::disabled(),
                0,
            )
            .expect("race solve");
            race_samples.push(t0.elapsed().as_secs_f64());
            let e_cold = cold.expected_energy(&ctx, probs);
            assert!(
                outcome.energy <= e_cold + 1e-9,
                "portfolio must never lose to the DLS pipeline: {} > {}",
                outcome.energy,
                e_cold
            );
            race_wins[DEFAULT_PORTFOLIO[outcome.winner].index()] += 1;
            race_energy_ratio_sum += outcome.energy / e_cold;
            race_energy_ratio_n += 1;
        }
    }

    let cold = summarize(cold_samples);
    let warm = summarize(warm_samples);
    let near = summarize(near_samples);
    let race = summarize(race_samples);
    let race_energy_ratio = race_energy_ratio_sum / race_energy_ratio_n as f64;
    let speedup_total = cold.total_s / warm.total_s;
    let near_speedup_total = cold.total_s / near.total_s;
    let warm_stats = warm_stats.expect("at least one rep ran");
    let near_stats = near_stats.expect("at least one rep ran");

    // ---- Instrumented warm pass: per-stage breakdown. ----
    let sink = Arc::new(BufferedSink::new(1));
    let obs = Obs::with_sink(sink.clone());
    let mut ws = SolverWorkspace::new();
    ws.set_obs(obs, 0);
    for probs in &tables {
        online
            .solve_with_workspace(&ctx, probs, &mut ws)
            .expect("instrumented solve");
    }
    let events = sink.drain_sorted();
    let stage_lat = |stage: Stage| {
        let durs: Vec<u64> = events
            .iter()
            .filter(|e| e.stage == stage && e.kind == EventKind::Span)
            .map(|e| e.dur_ns)
            .collect();
        let count = durs.len();
        let mean_us = if count == 0 {
            0.0
        } else {
            durs.iter().sum::<u64>() as f64 / count as f64 / 1e3
        };
        StageLat { mean_us, count }
    };
    let stage_dls = stage_lat(Stage::DlsMap);
    let stage_enum = stage_lat(Stage::PathEnum);
    let stage_stretch = stage_lat(Stage::Stretch);

    // ---- Report. ----
    println!(
        "solver latency on mpeg/{} ({} tables x {reps} reps, adaptive drift):\n",
        movie.name,
        tables.len()
    );
    let fmt = |label: &str, l: &Lat| {
        println!(
            "{label:<6} p50 {:>9.1} us   p99 {:>9.1} us   mean {:>9.1} us   total {:.4} s",
            l.p50_us, l.p99_us, l.mean_us, l.total_s
        );
    };
    fmt("cold", &cold);
    fmt("warm", &warm);
    fmt("near", &near);
    fmt("race", &race);
    println!(
        "\nwarm speedup (total cold / total warm): {speedup_total:.2}x, \
         near-memo: {near_speedup_total:.2}x"
    );
    println!(
        "stages (instrumented warm pass): dls_map {:.1} us x{}, path_enum {:.1} us x{}, \
         stretch {:.1} us x{}",
        stage_dls.mean_us,
        stage_dls.count,
        stage_enum.mean_us,
        stage_enum.count,
        stage_stretch.mean_us,
        stage_stretch.count
    );
    println!(
        "warm workspace: {} solves, {} memo hits, {} full level builds, {} dirty updates \
         ({} levels recomputed), {} graph reuses / {} rebuilds",
        warm_stats.solves,
        warm_stats.memo_hits,
        warm_stats.full_level_rebuilds,
        warm_stats.dirty_level_updates,
        warm_stats.levels_recomputed,
        warm_stats.graph_reuses,
        warm_stats.graph_rebuilds
    );
    println!(
        "near workspace: {} near-memo replays of {} solves ({} graph reuses / {} rebuilds)",
        near_stats.near_hits, near_stats.solves, near_stats.graph_reuses, near_stats.graph_rebuilds
    );
    println!("equivalence: PASS (every warm and near solution bit-identical to cold)");
    let wins: Vec<String> = SchedulerKind::ALL
        .iter()
        .map(|k| format!("{k}:{}", race_wins[k.index()]))
        .collect();
    println!(
        "portfolio race (dls+heft+lookahead): wins {}, mean energy vs dls {:.4} (never above 1)",
        wins.join(" "),
        race_energy_ratio
    );

    // ---- Hand-rolled JSON artifact. ----
    let lat_json = |l: &Lat| {
        format!(
            "{{\"p50_us\": {:.3}, \"p99_us\": {:.3}, \"mean_us\": {:.3}, \"total_s\": {:.6}}}",
            l.p50_us, l.p99_us, l.mean_us, l.total_s
        )
    };
    let stage_json =
        |s: &StageLat| format!("{{\"mean_us\": {:.3}, \"count\": {}}}", s.mean_us, s.count);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"mpeg/{}\",\n  \"tables\": {},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n",
        movie.name,
        tables.len()
    ));
    json.push_str(&format!("  \"cold\": {},\n", lat_json(&cold)));
    json.push_str(&format!("  \"warm\": {},\n", lat_json(&warm)));
    json.push_str(&format!("  \"near\": {},\n", lat_json(&near)));
    json.push_str(&format!("  \"portfolio\": {},\n", lat_json(&race)));
    json.push_str(&format!(
        "  \"portfolio_wins\": {{\"dls\": {}, \"heft\": {}, \"lookahead\": {}, \"frame\": {}}},\n",
        race_wins[0], race_wins[1], race_wins[2], race_wins[3]
    ));
    json.push_str(&format!(
        "  \"portfolio_energy_vs_dls\": {race_energy_ratio:.6},\n"
    ));
    json.push_str(&format!("  \"speedup_total\": {speedup_total:.4},\n"));
    json.push_str(&format!(
        "  \"near_speedup_total\": {near_speedup_total:.4},\n"
    ));
    json.push_str(&format!(
        "  \"stages\": {{\"dls_map\": {}, \"path_enum\": {}, \"stretch\": {}}},\n",
        stage_json(&stage_dls),
        stage_json(&stage_enum),
        stage_json(&stage_stretch)
    ));
    json.push_str(&format!(
        "  \"workspace\": {{\"solves\": {}, \"memo_hits\": {}, \"full_level_rebuilds\": {}, \
         \"dirty_level_updates\": {}, \"levels_recomputed\": {}, \"graph_reuses\": {}, \
         \"graph_rebuilds\": {}, \"rebinds\": {}}},\n",
        warm_stats.solves,
        warm_stats.memo_hits,
        warm_stats.full_level_rebuilds,
        warm_stats.dirty_level_updates,
        warm_stats.levels_recomputed,
        warm_stats.graph_reuses,
        warm_stats.graph_rebuilds,
        warm_stats.rebinds
    ));
    json.push_str(&format!(
        "  \"near_workspace\": {{\"solves\": {}, \"near_hits\": {}, \"memo_hits\": {}, \
         \"graph_reuses\": {}, \"graph_rebuilds\": {}}},\n",
        near_stats.solves,
        near_stats.near_hits,
        near_stats.memo_hits,
        near_stats.graph_reuses,
        near_stats.graph_rebuilds
    ));
    json.push_str("  \"equivalence\": \"pass\"\n}\n");
    let out = if smoke {
        std::fs::create_dir_all("target").expect("create target dir");
        "target/BENCH_solver_smoke.json"
    } else {
        "BENCH_solver.json"
    };
    std::fs::write(out, json).expect("write bench artifact");
    println!("wrote {out}");

    // ---- Baseline gate. ----
    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base_p99 = baseline_warm_p99(&baseline)
            .unwrap_or_else(|| panic!("baseline {path} has no warm p99"));
        println!(
            "baseline gate: warm p99 {:.1} us vs baseline {:.1} us (limit {:.1} us)",
            warm.p99_us,
            base_p99,
            2.0 * base_p99
        );
        if warm.p99_us > 2.0 * base_p99 {
            eprintln!(
                "FAIL: warm p99 {:.1} us regressed more than 2x over baseline {:.1} us",
                warm.p99_us, base_p99
            );
            std::process::exit(1);
        }
        println!("baseline gate: PASS");
    }
}
