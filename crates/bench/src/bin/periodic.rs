//! Periodic execution study (extension).
//!
//! The paper assumes period = deadline. This bench sweeps the release period
//! of the MPEG decoder below the deadline and reports when back-to-back
//! instances begin to overrun — the sustainable throughput of the stretched
//! schedule — and how much throughput margin running at nominal speed keeps
//! in reserve.

use ctg_bench::report::{f1, Table};
use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_sched::{OnlineScheduler, Solution, SpeedAssignment};
use ctg_sim::run_periodic;
use ctg_workloads::traces;

const LEN: usize = 300;

fn main() {
    let ctx = prepare_mpeg(2.0);
    let movie = &traces::movie_presets()[0];
    let trace = traces::generate_trace(ctx.ctg(), &movie.profile, LEN);
    let profiled = profile_trace(&ctx, &trace);
    let stretched = OnlineScheduler::new()
        .solve(&ctx, &profiled)
        .expect("online solves");
    let nominal = Solution {
        schedule: stretched.schedule.clone(),
        speeds: SpeedAssignment::nominal(ctx.ctg().num_tasks()),
    };

    let deadline = ctx.ctg().deadline();
    let mut table = Table::new([
        "period (×deadline)",
        "stretched overruns",
        "stretched max lateness",
        "nominal overruns",
        "nominal max lateness",
    ]);
    for factor in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4] {
        let period = factor * deadline;
        let s = run_periodic(&ctx, &stretched, &trace, period).expect("periodic run");
        let n = run_periodic(&ctx, &nominal, &trace, period).expect("periodic run");
        table.row([
            format!("{factor}"),
            s.overruns.to_string(),
            f1(s.max_lateness),
            n.overruns.to_string(),
            f1(n.max_lateness),
        ]);
    }
    table.print("Periodic release sweep on MPEG (deadline-relative periods)");
    println!(
        "\nthe stretched schedule consumes its slack as energy savings, so its\n\
         sustainable period sits near the deadline; the nominal-speed schedule\n\
         tolerates much shorter periods — the classic energy/throughput trade."
    );
}
