//! Figure 6 — energy of the non-adaptive online algorithm with *ideal*
//! profiling information vs. the adaptive algorithm (threshold 0.5) on the
//! same ten random CTGs as Tables 4/5.
//!
//! Paper shape targets: ~10% overall savings; ~16% for Category-1 graphs
//! vs. ~5% for Category-2 — even a perfect long-run average cannot follow
//! the local probability fluctuations.

use ctg_bench::report::{f1, pct, Table};
use ctg_bench::setup::{prepare_case, profile_trace};
use ctg_sched::{AdaptiveScheduler, OnlineScheduler, DEFAULT_PORTFOLIO};
use ctg_sim::{map_ordered, run_adaptive, run_static, worker_count, RunConfig, Runner};
use ctg_workloads::traces::{self, DriftProfile};

const WINDOW: usize = 20;
const LEN: usize = 1000;
/// The paper uses threshold 0.5 for Figure 6. With our drift semantics an
/// ideal-profile start rarely crosses 0.5, so we report both 0.5 and 0.1 —
/// the lower threshold carries the adaptive effect (see EXPERIMENTS.md).
const THRESHOLDS: [f64; 2] = [0.5, 0.1];

fn main() {
    let cases = tgff_gen::table45_cases();
    let mut table = Table::new([
        "CTG",
        "a/b/c",
        "Non-adaptive (ideal)",
        "Adaptive T=0.5",
        "Sav. 0.5",
        "Adaptive T=0.1",
        "Sav. 0.1",
        "Portfolio T=0.1",
        "Sav. pf",
    ]);
    let mut per_cat = [Vec::new(), Vec::new()];

    // Each CTG case is an independent cell; fan out and merge in case
    // order so the table is identical to a sequential run.
    let rows = map_ordered(&cases, worker_count(), |i, (cfg, pes)| {
        let case = prepare_case(cfg, *pes, 1.6);
        let ctx = &case.ctx;
        let profile = DriftProfile {
            seed: 7000 + i as u64,
            scene_len: (250, 650),
            dist: ctg_workloads::traces::SceneDist::Bimodal {
                low: (0.05, 0.25),
                high: (0.75, 0.95),
            },
            walk_sigma: 0.03,
        };
        let trace = traces::generate_trace(ctx.ctg(), &profile, LEN);
        // Ideal profiling: the exact long-run averages of the test trace
        // itself.
        let ideal = profile_trace(ctx, &trace);
        let online = OnlineScheduler::new()
            .solve(ctx, &ideal)
            .expect("online solves");
        let s_online = run_static(ctx, &online, &trace).expect("static run");

        let mut cells = vec![
            format!("{}", i + 1),
            case.label.clone(),
            f1(s_online.avg_energy()),
        ];
        let mut best_savings = f64::NEG_INFINITY;
        let mut e_dls01 = f64::INFINITY;
        for threshold in THRESHOLDS {
            let mgr = AdaptiveScheduler::new(ctx, ideal.clone(), WINDOW, threshold)
                .expect("manager builds");
            let (s_adaptive, _) = run_adaptive(ctx, mgr, &trace).expect("adaptive run");
            assert_eq!(s_adaptive.exec.deadline_misses, 0, "hard deadline violated");
            let savings = 1.0 - s_adaptive.avg_energy() / s_online.avg_energy();
            best_savings = best_savings.max(savings);
            e_dls01 = s_adaptive.avg_energy();
            cells.push(f1(s_adaptive.avg_energy()));
            cells.push(pct(savings));
        }
        // Portfolio racing at the aggressive threshold, same knobs.
        let mgr = AdaptiveScheduler::new(ctx, ideal.clone(), WINDOW, 0.1).expect("manager builds");
        let (s_portfolio, _) = Runner::new(RunConfig::new().portfolio(&DEFAULT_PORTFOLIO))
            .run_adaptive(ctx, mgr, &trace)
            .expect("portfolio run");
        assert_eq!(
            s_portfolio.exec.deadline_misses, 0,
            "hard deadline violated"
        );
        assert!(
            s_portfolio.avg_energy() <= e_dls01 + 1e-9,
            "portfolio must not regress DLS-only adaptation on case {}: {} > {}",
            i + 1,
            s_portfolio.avg_energy(),
            e_dls01,
        );
        let savings = 1.0 - s_portfolio.avg_energy() / s_online.avg_energy();
        best_savings = best_savings.max(savings);
        cells.push(f1(s_portfolio.avg_energy()));
        cells.push(pct(savings));
        (cells, best_savings)
    });
    for (i, (cells, best_savings)) in rows.into_iter().enumerate() {
        per_cat[usize::from(i >= 5)].push(best_savings);
        table.row(cells);
    }

    table.print("Figure 6: energy consumption with ideal profiling");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let all: Vec<f64> = per_cat.concat();
    println!(
        "\nbest-threshold savings: overall {} (paper ~10%), category 1 {} (paper ~16%), category 2 {} (paper ~5%)",
        pct(avg(&all)),
        pct(avg(&per_cat[0])),
        pct(avg(&per_cat[1]))
    );
}
