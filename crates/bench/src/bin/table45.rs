//! Tables 4 & 5 — online algorithm with *biased* profiled probabilities vs.
//! the adaptive algorithm on ten random CTGs (five Category-1 fork-join
//! graphs, five Category-2 layered graphs).
//!
//! The test vectors have equal long-run branch averages but considerable
//! local fluctuation (as in the MPEG measurements). The non-adaptive
//! algorithm is profiled with probabilities favouring the lowest-energy
//! minterm (Table 4) or the highest-energy minterm (Table 5); the adaptive
//! algorithm starts from the same biased table and tracks the truth.
//!
//! Paper shape targets: ~22–23% savings with the low-energy bias and only
//! ~3–5% with the high-energy bias; Category-1 savings exceed Category-2;
//! call counts ≈ 3–10 (T = 0.5) and ≈ 100–250 (T = 0.1).

use ctg_bench::report::{f1, pct, Table};
use ctg_bench::setup::{extreme_minterm_alts, prepare_case};
use ctg_model::DecisionVector;
use ctg_sched::{AdaptiveScheduler, OnlineScheduler, SchedContext};
use ctg_sim::{run_adaptive, run_static, RunSummary};
use ctg_workloads::traces::{self, DriftProfile};

const WINDOW: usize = 20;
const LEN: usize = 1000;
const BIAS: f64 = 0.95;

struct CaseResult {
    online: f64,
    adaptive: [(f64, usize); 2], // (avg energy, calls) for T=0.5, T=0.1
}

fn run_case(
    ctx: &SchedContext,
    biased: &ctg_model::BranchProbs,
    trace: &[DecisionVector],
) -> CaseResult {
    let online = OnlineScheduler::new()
        .solve(ctx, biased)
        .expect("online solves");
    let s_online: RunSummary = run_static(ctx, &online, trace).expect("static run");
    assert_eq!(s_online.exec.deadline_misses, 0, "hard deadline violated");
    let mut adaptive = [(0.0, 0usize); 2];
    for (k, threshold) in [0.5, 0.1].into_iter().enumerate() {
        let mgr =
            AdaptiveScheduler::new(ctx, biased.clone(), WINDOW, threshold).expect("manager builds");
        let (s, _) = run_adaptive(ctx, mgr, trace).expect("adaptive run");
        assert_eq!(s.exec.deadline_misses, 0, "hard deadline violated");
        adaptive[k] = (s.avg_energy(), s.calls);
    }
    CaseResult {
        online: s_online.avg_energy(),
        adaptive,
    }
}

fn main() {
    let cases = tgff_gen::table45_cases();
    let mut tables = [
        Table::new([
            "CTG", "a/b/c", "Online", "E T=0.5", "# calls", "E T=0.1", "# calls",
        ]),
        Table::new([
            "CTG", "a/b/c", "Online", "E T=0.5", "# calls", "E T=0.1", "# calls",
        ]),
    ];
    // savings accumulators: [bias][category]
    let mut savings = [[Vec::new(), Vec::new()], [Vec::new(), Vec::new()]];

    for (i, (cfg, pes)) in cases.iter().enumerate() {
        let case = prepare_case(cfg, *pes, 1.6);
        let ctx = &case.ctx;
        // Equal long-run averages with strong local fluctuation.
        let profile = DriftProfile {
            seed: 7000 + i as u64,
            scene_len: (250, 650),
            dist: ctg_workloads::traces::SceneDist::Bimodal {
                low: (0.05, 0.25),
                high: (0.75, 0.95),
            },
            walk_sigma: 0.03,
        };
        let trace = traces::generate_trace(ctx.ctg(), &profile, LEN);
        let category = usize::from(i >= 5); // 0 = fork-join, 1 = layered

        for (bias_idx, lowest) in [(0usize, true), (1usize, false)] {
            let alts = extreme_minterm_alts(ctx, lowest);
            let biased = traces::skewed_probs(ctx.ctg(), &alts, BIAS);
            let r = run_case(ctx, &biased, &trace);
            let best_adaptive = r.adaptive[1].0.min(r.adaptive[0].0);
            savings[bias_idx][category].push(1.0 - best_adaptive / r.online);
            tables[bias_idx].row([
                format!("{}", i + 1),
                case.label.clone(),
                f1(r.online),
                f1(r.adaptive[0].0),
                r.adaptive[0].1.to_string(),
                f1(r.adaptive[1].0),
                r.adaptive[1].1.to_string(),
            ]);
        }
    }

    tables[0].print("Table 4: online profiled for LOWEST-energy minterm bias vs adaptive");
    summarize(&savings[0], "low-energy bias (paper: ~22-23% savings)");
    tables[1].print("Table 5: online profiled for HIGHEST-energy minterm bias vs adaptive");
    summarize(&savings[1], "high-energy bias (paper: ~3-5% savings)");
}

fn summarize(per_cat: &[Vec<f64>; 2], label: &str) {
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let all: Vec<f64> = per_cat.concat();
    println!(
        "\n{label}: overall {}, category 1 {}, category 2 {} (paper: cat 1 > cat 2)",
        pct(avg(&all)),
        pct(avg(&per_cat[0])),
        pct(avg(&per_cat[1]))
    );
}
