//! Table 1 — normalized energy of the online algorithm vs. reference
//! algorithms 1 and 2 on five random CTGs, plus per-algorithm runtimes
//! (the paper: ref. 1 ≈ +39% energy on average; online ≈ +8% vs. ref. 2;
//! online ≈ 120 000× faster than ref. 2).
//!
//! Grown past the paper: a scheduler column block compares the
//! [`CtgScheduler`] implementors (HEFT, the lookahead list scheduler and
//! the frame-based DVFS baseline) and the racing portfolio on the same
//! cases, normalized the same way. The portfolio is asserted never worse
//! than the online (DLS) pipeline on every row — the race's DLS-first
//! tie-breaking makes that a structural guarantee, not a lucky sample.

use ctg_bench::report::{f1, Table};
use ctg_bench::setup::prepare_case;
use ctg_obs::Obs;
use ctg_sched::baseline::{reference1, reference2, NlpConfig};
use ctg_sched::{
    race_portfolio, OnlineScheduler, SchedulerKind, SolverWorkspace, StretchConfig,
    DEFAULT_PORTFOLIO,
};
use ctg_sim::{map_ordered, worker_count};
use std::time::{Duration, Instant};

struct CaseResult {
    label: String,
    n1: f64,
    n2: f64,
    n_heft: f64,
    n_look: f64,
    n_frame: f64,
    n_portfolio: f64,
    winner: &'static str,
    t_online: Duration,
    t_ref2: Duration,
}

fn run_case(cfg: &tgff_gen::TgffConfig, pes: usize) -> CaseResult {
    let case = prepare_case(cfg, pes, 1.6);
    let (ctx, probs) = (&case.ctx, &case.probs);

    let t0 = Instant::now();
    let online = OnlineScheduler::with_config(StretchConfig::default())
        .solve(ctx, probs)
        .expect("online solves");
    let t_online = t0.elapsed();

    let ref1 = reference1(ctx, &StretchConfig::default()).expect("ref1 solves");

    let t0 = Instant::now();
    let ref2 = reference2(ctx, probs, &NlpConfig::default()).expect("ref2 solves");
    let t_ref2 = t0.elapsed();

    let e_online = online.expected_energy(ctx, probs);
    let e_ref1 = ref1.expected_energy(ctx, probs);
    let e_ref2 = ref2.expected_energy(ctx, probs);

    // The trait implementors on the same case, same normalization.
    let norm = |kind: SchedulerKind| {
        let sol = kind.solve(ctx, probs).expect("scheduler solves");
        100.0 * sol.expected_energy(ctx, probs) / e_online
    };
    let n_heft = norm(SchedulerKind::Heft);
    let n_look = norm(SchedulerKind::Lookahead);
    let n_frame = norm(SchedulerKind::FrameDvfs);

    // The default racing portfolio; DLS races too, so the winner can never
    // be worse than the online pipeline.
    let mut wss: Vec<SolverWorkspace> = DEFAULT_PORTFOLIO
        .iter()
        .map(|_| SolverWorkspace::new())
        .collect();
    let outcome = race_portfolio(
        &DEFAULT_PORTFOLIO,
        ctx,
        probs,
        &mut wss,
        1,
        &Obs::disabled(),
        0,
    )
    .expect("portfolio race solves");
    let n_portfolio = 100.0 * outcome.energy / e_online;
    assert!(
        n_portfolio <= 100.0 + 1e-9,
        "portfolio must never lose to the online pipeline: {n_portfolio:.6} on {}",
        case.label
    );

    CaseResult {
        label: case.label,
        // Normalize: online = 100 (as in the paper).
        n1: 100.0 * e_ref1 / e_online,
        n2: 100.0 * e_ref2 / e_online,
        n_heft,
        n_look,
        n_frame,
        n_portfolio,
        winner: DEFAULT_PORTFOLIO[outcome.winner].name(),
        t_online,
        t_ref2,
    }
}

fn main() {
    let mut table = Table::new([
        "CTG",
        "a/b/c",
        "Ref. Alg. 1",
        "Ref. Alg. 2",
        "Online",
        "t_online",
        "t_ref2",
    ]);
    let mut sched_table = Table::new([
        "CTG",
        "Online",
        "HEFT",
        "Lookahead",
        "Frame",
        "Portfolio",
        "Winner",
    ]);
    let mut sum_ref1 = 0.0;
    let mut sum_ref2 = 0.0;
    let mut sum_portfolio = 0.0;
    let mut speedups = Vec::new();

    // The cases are independent; fan them out and merge in table order. The
    // energy columns are bit-identical to a sequential run; only the timing
    // columns feel scheduler contention.
    let cases = tgff_gen::table1_cases();
    let results = map_ordered(&cases, worker_count(), |_, (cfg, pes)| run_case(cfg, *pes));

    for (i, r) in results.into_iter().enumerate() {
        sum_ref1 += r.n1;
        sum_ref2 += r.n2;
        sum_portfolio += r.n_portfolio;
        speedups.push(r.t_ref2.as_secs_f64() / r.t_online.as_secs_f64());
        table.row([
            format!("{}", i + 1),
            r.label,
            f1(r.n1),
            f1(r.n2),
            "100.0".to_string(),
            format!("{:.2?}", r.t_online),
            format!("{:.2?}", r.t_ref2),
        ]);
        sched_table.row([
            format!("{}", i + 1),
            "100.0".to_string(),
            f1(r.n_heft),
            f1(r.n_look),
            f1(r.n_frame),
            f1(r.n_portfolio),
            r.winner.to_string(),
        ]);
    }
    table.print("Table 1: energy consumption of online algorithm (online = 100)");
    let n = tgff_gen::table1_cases().len() as f64;
    println!(
        "\navg ref1 = {:.1} (paper: online saves ~39% vs ref1)\navg ref2 = {:.1} (paper: online loses ~8% to ref2)",
        sum_ref1 / n,
        sum_ref2 / n
    );
    let avg_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "avg online-vs-ref2 speedup = {avg_speedup:.0}x (paper: ~120000x with a true NLP solver)"
    );
    sched_table.print("Table 1b: CtgScheduler implementors on the same cases (online = 100)");
    println!(
        "\navg portfolio = {:.1} (never above 100.0 by construction)",
        sum_portfolio / n
    );
}
