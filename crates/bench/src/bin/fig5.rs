//! Figure 5 + Table 2 — MPEG average energy for eight movie clips under the
//! non-adaptive online algorithm and the adaptive algorithm with thresholds
//! 0.5 and 0.1 (window 20), plus the re-scheduling call counts.
//!
//! Paper shape targets: adaptive saves ~21% (T = 0.5) and ~23% (T = 0.1)
//! over the online algorithm; call counts average ~9 (T = 0.5) and ~162
//! (T = 0.1).

use ctg_bench::report::{f1, pct, Table};
use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_sched::{AdaptiveScheduler, OnlineScheduler, DEFAULT_PORTFOLIO};
use ctg_sim::{map_ordered, run_adaptive, worker_count, RunConfig, RunSummary, Runner};
use ctg_workloads::traces;

const WINDOW: usize = 20;
const TRAIN: usize = 1000;
const TEST: usize = 1000;

fn main() {
    let ctx = prepare_mpeg(2.0);
    let mut energy_table = Table::new([
        "Movie",
        "Online",
        "Adaptive T=0.5",
        "Adaptive T=0.1",
        "Portfolio T=0.1",
        "Sav. 0.5",
        "Sav. 0.1",
        "Sav. pf",
    ]);
    let mut calls_table = Table::new(["Movie", "T=0.5", "T=0.1"]);
    let (mut sum05, mut sum01, mut sumpf, mut n) = (0.0, 0.0, 0.0, 0usize);
    let (mut csum05, mut csum01) = (0usize, 0usize);

    // One independent cell per movie clip, merged back in preset order.
    let movies = traces::movie_presets();
    let per_movie: Vec<(RunSummary, Vec<RunSummary>)> =
        map_ordered(&movies, worker_count(), |_, movie| {
            let trace = traces::generate_trace(ctx.ctg(), &movie.profile, TRAIN + TEST);
            let (train, test) = trace.split_at(TRAIN);

            // Non-adaptive: profile the training half, schedule once.
            let profiled = profile_trace(&ctx, train);
            let online = OnlineScheduler::new()
                .solve(&ctx, &profiled)
                .expect("online solves");
            let s_online = Runner::new(RunConfig::new())
                .run_static(&ctx, &online, test)
                .expect("static run");

            // Adaptive: same initial (profiled) probabilities, window 20.
            let mut results = Vec::new();
            for threshold in [0.5, 0.1] {
                let mgr = AdaptiveScheduler::new(&ctx, profiled.clone(), WINDOW, threshold)
                    .expect("manager builds");
                let (summary, _) = run_adaptive(&ctx, mgr, test).expect("adaptive run");
                assert_eq!(summary.exec.deadline_misses, 0, "hard deadline violated");
                results.push(summary);
            }
            // Portfolio racing at the aggressive threshold: same manager
            // knobs, every drift event races DLS/HEFT/lookahead and adopts
            // the lowest expected-energy schedulable plan.
            let mgr = AdaptiveScheduler::new(&ctx, profiled.clone(), WINDOW, 0.1)
                .expect("manager builds");
            let (summary, _) = Runner::new(RunConfig::new().portfolio(&DEFAULT_PORTFOLIO))
                .run_adaptive(&ctx, mgr, test)
                .expect("portfolio run");
            assert_eq!(summary.exec.deadline_misses, 0, "hard deadline violated");
            results.push(summary);
            (s_online, results)
        });

    for (movie, (s_online, results)) in movies.iter().zip(&per_movie) {
        let (a05, a01, apf) = (&results[0], &results[1], &results[2]);
        let e_on = s_online.avg_energy();
        let sav05 = 1.0 - a05.avg_energy() / e_on;
        let sav01 = 1.0 - a01.avg_energy() / e_on;
        let savpf = 1.0 - apf.avg_energy() / e_on;
        sum05 += sav05;
        sum01 += sav01;
        sumpf += savpf;
        csum05 += a05.calls;
        csum01 += a01.calls;
        n += 1;
        assert!(
            apf.avg_energy() <= a01.avg_energy() + 1e-9,
            "portfolio must not regress DLS-only adaptation on {}: {} > {}",
            movie.name,
            apf.avg_energy(),
            a01.avg_energy(),
        );

        energy_table.row([
            movie.name.to_string(),
            f1(e_on),
            f1(a05.avg_energy()),
            f1(a01.avg_energy()),
            f1(apf.avg_energy()),
            pct(sav05),
            pct(sav01),
            pct(savpf),
        ]);
        calls_table.row([
            movie.name.to_string(),
            a05.calls.to_string(),
            a01.calls.to_string(),
        ]);
    }

    energy_table.print("Figure 5: MPEG energy consumption with varying thresholds");
    println!(
        "\navg savings: T=0.5 {} (paper ~21%), T=0.1 {} (paper ~23%), portfolio {}",
        pct(sum05 / n as f64),
        pct(sum01 / n as f64),
        pct(sumpf / n as f64)
    );
    calls_table.print("Table 2: algorithm call count for MPEG movies");
    println!(
        "\navg calls: T=0.5 {:.0} (paper ~9), T=0.1 {:.0} (paper ~162)",
        csum05 as f64 / n as f64,
        csum01 as f64 / n as f64
    );
}
