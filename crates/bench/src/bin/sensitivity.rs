//! Sensitivity of the adaptive algorithm to its two knobs — window length
//! and adaptation threshold (paper §III.B: "the window size and the
//! threshold determine how frequently the online scheduling and DVFS is
//! called and they also impact how well the algorithm adapts").
//!
//! Sweeps a grid on the MPEG workload and reports savings vs. the
//! non-adaptive online baseline together with the call counts, plus a
//! second sweep over DVFS level granularity (continuous vs. discrete).

use ctg_bench::report::{pct, Table};
use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_sched::{AdaptiveScheduler, EstimatorKind, OnlineScheduler, SchedContext};
use ctg_sim::{map_ordered, run_adaptive, run_static, worker_count};
use ctg_workloads::traces;
use mpsoc_platform::DvfsModel;

const LEN: usize = 1600;

fn main() {
    let ctx = prepare_mpeg(2.0);
    let movie = &traces::movie_presets()[1]; // Bike: strong scene drift
    let trace = traces::generate_trace(ctx.ctg(), &movie.profile, LEN);
    let (train, test) = trace.split_at(LEN / 2);
    let profiled = profile_trace(&ctx, train);
    let online = OnlineScheduler::new()
        .solve(&ctx, &profiled)
        .expect("online solves");
    let s_online = run_static(&ctx, &online, test).expect("static run");

    let workers = worker_count();
    let windows = [8usize, 20, 50];
    let thresholds = [0.5, 0.25, 0.1, 0.05];
    // Flatten the window × threshold grid and fan the cells out; ordered
    // merging reassembles the rows exactly as the nested loops printed them.
    let grid: Vec<(usize, f64)> = windows
        .iter()
        .flat_map(|&w| thresholds.iter().map(move |&t| (w, t)))
        .collect();
    let grid_cells = map_ordered(&grid, workers, |_, &(w, t)| {
        let mgr = AdaptiveScheduler::new(&ctx, profiled.clone(), w, t).expect("manager builds");
        let (s, _) = run_adaptive(&ctx, mgr, test).expect("adaptive run");
        assert_eq!(s.exec.deadline_misses, 0);
        let savings = 1.0 - s.avg_energy() / s_online.avg_energy();
        format!("{} ({} calls)", pct(savings), s.calls)
    });
    let mut table = Table::new(["window \\ T", "0.5", "0.25", "0.1", "0.05"]);
    for (wi, &w) in windows.iter().enumerate() {
        let mut row = vec![w.to_string()];
        row.extend_from_slice(&grid_cells[wi * thresholds.len()..(wi + 1) * thresholds.len()]);
        table.row(row);
    }
    table.print(&format!(
        "Adaptive sensitivity on MPEG/{} (savings vs online, {} test instances)",
        movie.name,
        test.len()
    ));

    // ---- Estimator comparison: sliding window vs EWMA. ----
    let estimators = [
        ("window 20", EstimatorKind::Window(20)),
        ("window 50", EstimatorKind::Window(50)),
        ("EWMA a=0.05", EstimatorKind::Ewma(0.05)),
        ("EWMA a=0.1", EstimatorKind::Ewma(0.1)),
        ("EWMA a=0.3", EstimatorKind::Ewma(0.3)),
    ];
    let est_rows = map_ordered(&estimators, workers, |_, &(label, kind)| {
        let mgr = AdaptiveScheduler::with_estimator(
            &ctx,
            profiled.clone(),
            kind,
            0.1,
            OnlineScheduler::new(),
        )
        .expect("manager builds");
        let (s, _) = run_adaptive(&ctx, mgr, test).expect("adaptive run");
        assert_eq!(s.exec.deadline_misses, 0);
        [
            label.to_string(),
            pct(1.0 - s.avg_energy() / s_online.avg_energy()),
            s.calls.to_string(),
        ]
    });
    let mut est_table = Table::new(["estimator", "savings", "calls"]);
    for row in est_rows {
        est_table.row(row);
    }
    est_table.print("Estimator comparison at threshold 0.1 (extension: EWMA vs window)");

    // ---- DVFS granularity: continuous vs. discrete levels. ----
    let dvfs_models = [
        ("continuous", DvfsModel::Continuous),
        (
            "8 levels",
            DvfsModel::discrete((1..=8).map(|i| i as f64 / 8.0).collect()),
        ),
        ("4 levels", DvfsModel::discrete(vec![0.25, 0.5, 0.75, 1.0])),
        ("2 levels", DvfsModel::discrete(vec![0.5, 1.0])),
    ];
    let energies = map_ordered(&dvfs_models, workers, |_, (_, model)| {
        energy_with_dvfs(&ctx, &profiled, test, model.clone())
    });
    let base = energies[0]; // continuous is the first model
    let mut dvfs_table = Table::new(["DVFS model", "online energy", "vs continuous"]);
    for ((label, _), &e) in dvfs_models.iter().zip(&energies) {
        dvfs_table.row([
            label.to_string(),
            format!("{e:.2}"),
            format!("{:+.1}%", 100.0 * (e / base - 1.0)),
        ]);
    }
    dvfs_table.print("DVFS level granularity (speeds round UP to the next level — deadline-safe)");
    println!(
        "\ncoarser level sets waste the fractional slack between levels; the paper\n\
         assumes continuous scaling, the extension quantifies the gap."
    );
}

fn energy_with_dvfs(
    ctx: &SchedContext,
    probs: &ctg_model::BranchProbs,
    test: &[ctg_model::DecisionVector],
    model: DvfsModel,
) -> f64 {
    let platform = ctx.platform().with_dvfs(model);
    let ctx = SchedContext::new(ctx.ctg().clone(), platform).expect("rebuild context");
    let online = OnlineScheduler::new().solve(&ctx, probs).expect("solves");
    let s = run_static(&ctx, &online, test).expect("static run");
    assert_eq!(
        s.exec.deadline_misses, 0,
        "quantized speeds must stay deadline-safe"
    );
    s.avg_energy()
}
