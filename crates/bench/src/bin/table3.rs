//! Table 3 — energy consumption of the vehicle cruise-controller system:
//! non-adaptive vs. adaptive over three road-condition vector sequences.
//!
//! Paper shape targets: savings hover around 5% (the CTG has only three
//! minterms and a 2× deadline, leaving little room); calls ≈ 150 at
//! T = 0.1 and ≈ 9 at T = 0.5.

use ctg_bench::report::{f1, pct, Table};
use ctg_bench::setup::{prepare_cruise, profile_trace};
use ctg_sched::{AdaptiveScheduler, OnlineScheduler};
use ctg_sim::{run_adaptive, run_static};
use ctg_workloads::traces;

const WINDOW: usize = 20;
const LEN: usize = 1000;

fn main() {
    // Paper: deadline = 2× the optimal schedule length, 5 PEs, 32 tasks.
    let ctx = prepare_cruise(2.0);
    let roads = traces::road_presets();
    // Sequence 1 is the training sequence for the non-adaptive profile.
    let seqs: Vec<Vec<ctg_model::DecisionVector>> = roads
        .iter()
        .map(|r| traces::generate_trace(ctx.ctg(), &r.profile, LEN))
        .collect();
    let profiled = profile_trace(&ctx, &seqs[0]);
    let online = OnlineScheduler::new()
        .solve(&ctx, &profiled)
        .expect("online solves");

    // Paper: threshold 0.1 for the first two sequences, 0.5 for the third.
    let thresholds = [0.1, 0.1, 0.5];

    let mut table = Table::new([
        "Vector sequence",
        "Non-adaptive",
        "Adaptive",
        "Savings",
        "Calls",
        "T",
    ]);
    for (i, seq) in seqs.iter().enumerate() {
        let s_static = run_static(&ctx, &online, seq).expect("static run");
        let mgr = AdaptiveScheduler::new(&ctx, profiled.clone(), WINDOW, thresholds[i])
            .expect("manager builds");
        let (s_adaptive, _) = run_adaptive(&ctx, mgr, seq).expect("adaptive run");
        assert_eq!(s_adaptive.exec.deadline_misses, 0, "hard deadline violated");
        assert_eq!(s_static.exec.deadline_misses, 0, "hard deadline violated");
        let savings = 1.0 - s_adaptive.avg_energy() / s_static.avg_energy();
        table.row([
            format!("{}", i + 1),
            f1(s_static.avg_energy()),
            f1(s_adaptive.avg_energy()),
            pct(savings),
            s_adaptive.calls.to_string(),
            format!("{}", thresholds[i]),
        ]);
    }
    table.print("Table 3: energy consumption of vehicle cruise controller system");
    println!(
        "\npaper: savings ~5% in all three cases (three-minterm CTG, 2x deadline); \
         calls ~150 @ T=0.1, ~9 @ T=0.5"
    );
}
