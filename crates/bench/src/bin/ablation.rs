//! Ablation study of the online algorithm's design choices (DESIGN.md §7):
//! what does each ingredient of the paper's framework buy?
//!
//! Variants evaluated on the Table-1 graph suite (expected energy under the
//! generator's true probabilities, lower is better):
//!
//! * **online** — the full algorithm (probability-aware DLS + weighted
//!   stretching, default 2 sweeps);
//! * **single-pass** — the paper-literal Figure-2 single stretching pass;
//! * **exhaustive** — stretching iterated to full slack utilisation;
//! * **prob-blind stretch** — the `[9]`-style baseline: same mapping,
//!   stretching without activation-probability weighting;
//! * **no-overlap** — DLS without the mutual-exclusion overlap modification;
//! * **worst-case SL** — DLS with worst-case instead of expected static
//!   levels;
//! * **ref1 / ref2** — the full reference baselines for context;
//! * **SA mapping** — simulated-annealing mapping search (co-synthesis
//!   style): how much a globally optimized mapping buys over DLS.

use ctg_bench::report::{f1, Table};
use ctg_bench::setup::prepare_case;
use ctg_model::BranchProbs;
use ctg_sched::baseline::{
    reference1, reference2, simulated_annealing, slack_distribution, NlpConfig, SaConfig,
};
use ctg_sched::{
    dls_with_levels, static_levels, stretch_schedule, worst_case_levels, OnlineScheduler,
    SchedContext, Solution, StretchConfig,
};

fn variant_energy(ctx: &SchedContext, probs: &BranchProbs, name: &str) -> f64 {
    let cfg = StretchConfig::default();
    let solution: Solution = match name {
        "online" => OnlineScheduler::new().solve(ctx, probs).expect("solves"),
        "single-pass" => OnlineScheduler::with_config(StretchConfig::single_pass())
            .solve(ctx, probs)
            .expect("solves"),
        "exhaustive" => OnlineScheduler::with_config(StretchConfig::exhaustive())
            .solve(ctx, probs)
            .expect("solves"),
        "prob-blind stretch" => slack_distribution(ctx, probs, &cfg).expect("solves"),
        "no-overlap" => {
            let sl = static_levels(ctx, probs);
            let schedule = dls_with_levels(ctx, &sl, false).expect("schedules");
            let speeds = stretch_schedule(ctx, probs, &schedule, &cfg).expect("stretches");
            Solution { schedule, speeds }
        }
        "worst-case SL" => {
            let sl = worst_case_levels(ctx);
            let schedule = dls_with_levels(ctx, &sl, true).expect("schedules");
            let speeds = stretch_schedule(ctx, probs, &schedule, &cfg).expect("stretches");
            Solution { schedule, speeds }
        }
        "ref1" => reference1(ctx, &cfg).expect("solves"),
        "ref2 (NLP)" => reference2(ctx, probs, &NlpConfig::default()).expect("solves"),
        "SA mapping" => simulated_annealing(ctx, probs, &SaConfig::default()).expect("solves"),
        other => unreachable!("unknown variant {other}"),
    };
    solution.expected_energy(ctx, probs)
}

fn main() {
    let variants = [
        "online",
        "single-pass",
        "exhaustive",
        "prob-blind stretch",
        "no-overlap",
        "worst-case SL",
        "ref1",
        "ref2 (NLP)",
        "SA mapping",
    ];
    let mut headers = vec!["CTG".to_string(), "a/b/c".to_string()];
    headers.extend(variants.iter().map(|s| s.to_string()));
    let mut table = Table::new(headers);
    let mut sums = vec![0.0_f64; variants.len()];

    for (i, (cfg, pes)) in tgff_gen::table1_cases().iter().enumerate() {
        let case = prepare_case(cfg, *pes, 1.6);
        let mut row = vec![format!("{}", i + 1), case.label.clone()];
        let online_e = variant_energy(&case.ctx, &case.probs, "online");
        for (k, v) in variants.iter().enumerate() {
            let e = variant_energy(&case.ctx, &case.probs, v);
            let normalized = 100.0 * e / online_e;
            sums[k] += normalized;
            row.push(f1(normalized));
        }
        table.row(row);
    }
    table.print("Ablation: expected energy, normalized to the full online algorithm = 100");
    println!("\naverages:");
    let n = tgff_gen::table1_cases().len() as f64;
    for (k, v) in variants.iter().enumerate() {
        println!("  {:20} {:6.1}", v, sums[k] / n);
    }
    println!(
        "\nreading guide: single-pass shows the slack left unused by one sweep;\n\
         prob-blind stretch isolates the probability weighting; no-overlap and\n\
         worst-case SL isolate the two DLS modifications; ref1/ref2 frame the range."
    );
}
