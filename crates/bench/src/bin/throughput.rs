//! Throughput bench — instances/sec of the batch simulator, sequential vs
//! the worker pool at 1/2/N workers, plus schedule-cache effectiveness for
//! the adaptive manager, on the MPEG workload (perf extension; not a paper
//! table).
//!
//! Every parallel summary is asserted equal to the sequential one (the
//! ordered-merge determinism guarantee as an executable check; `==` on
//! [`RunSummary`] compares everything except wall-clock). The adaptive
//! cache run must adopt exactly the plans of the cache-off run — identical
//! total energy bits and reschedule count — while answering a positive
//! number of lookups from the cache.
//!
//! The trace tiles one MPEG drift segment several times: movies revisit
//! scene types, and the recurrence is what a schedule cache exists to
//! exploit. Pass `--smoke` for a seconds-scale run (CI); numbers land in
//! `BENCH_throughput.json`.

use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_model::DecisionVector;
use ctg_sched::{AdaptiveScheduler, OnlineScheduler};
use ctg_sim::{
    run_adaptive, run_static, run_static_faulty, run_static_faulty_parallel, run_static_parallel,
    worker_count, FaultPlan, RunSummary,
};
use ctg_workloads::traces;

const WINDOW: usize = 20;
const THRESHOLD: f64 = 0.1;
// Must cover the per-tile working set of distinct (exact) probability
// vectors — an LRU scanned sequentially with a working set just above its
// capacity thrashes to ~0 hits. ~74 distinct vectors/tile at LEN=500.
const CACHE_CAPACITY: usize = 256;
const FAULT_SEED: u64 = 0x7A9_0BEEF;
const FAULT_RATE: f64 = 0.05;

fn worker_counts() -> Vec<usize> {
    let n = worker_count();
    let mut out = vec![1, 2];
    if n > 2 {
        out.push(n);
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (segment_len, tiles) = if smoke { (200, 3) } else { (500, 20) };

    let ctx = prepare_mpeg(2.0);
    let movie = &traces::movie_presets()[1]; // Bike: strong scene drift
    let segment = traces::generate_trace(ctx.ctg(), &movie.profile, segment_len);
    let mut trace: Vec<DecisionVector> = Vec::with_capacity(segment_len * tiles);
    for _ in 0..tiles {
        trace.extend_from_slice(&segment);
    }

    let profiled = profile_trace(&ctx, &segment);
    let online = OnlineScheduler::new()
        .solve(&ctx, &profiled)
        .expect("online solves");

    // ---- Static batch: sequential vs pool. ----
    let seq = run_static(&ctx, &online, &trace).expect("static run");
    let mut static_rows = Vec::new();
    for &w in &worker_counts() {
        let s = run_static_parallel(&ctx, &online, &trace, w).expect("parallel static run");
        assert_eq!(
            seq, s,
            "parallel static summary must be identical at {w} workers"
        );
        static_rows.push((w, s));
    }

    // ---- Faulty batch: per-instance fault streams are chunk-invariant. ----
    let plan = FaultPlan::uniform(FAULT_SEED, FAULT_RATE);
    let fseq = run_static_faulty(&ctx, &online, &trace, &plan).expect("faulty run");
    let mut faulty_rows = Vec::new();
    for &w in &worker_counts() {
        let s = run_static_faulty_parallel(&ctx, &online, &trace, &plan, w)
            .expect("parallel faulty run");
        assert_eq!(
            fseq, s,
            "parallel faulty summary must be identical at {w} workers"
        );
        faulty_rows.push((w, s));
    }

    // ---- Adaptive: schedule cache off vs on. ----
    let mgr_off =
        AdaptiveScheduler::new(&ctx, profiled.clone(), WINDOW, THRESHOLD).expect("manager builds");
    let (off, _) = run_adaptive(&ctx, mgr_off, &trace).expect("adaptive run");
    let mut mgr_on =
        AdaptiveScheduler::new(&ctx, profiled.clone(), WINDOW, THRESHOLD).expect("manager builds");
    mgr_on.enable_cache(&ctx, CACHE_CAPACITY);
    let (on, _) = run_adaptive(&ctx, mgr_on, &trace).expect("adaptive cached run");

    assert_eq!(
        off.exec.total_energy.to_bits(),
        on.exec.total_energy.to_bits(),
        "cache must not change a single adopted plan"
    );
    assert_eq!(off.reschedules, on.reschedules);
    assert_eq!(off.exec.deadline_misses, on.exec.deadline_misses);
    assert!(
        on.cache_hits > 0,
        "recurring MPEG scenes must produce cache hits"
    );
    assert!(on.calls < off.calls, "hits must save solver calls");

    // ---- Report. ----
    let fmt_row = |label: &str, w: &str, s: &RunSummary| {
        println!(
            "{label:<14} {w:>7}  {:>10.0} inst/s  ({:.3}s wall)",
            s.throughput(),
            s.wall_s
        );
    };
    println!(
        "throughput on mpeg/{} ({} instances = {tiles} x {segment_len}):\n",
        movie.name,
        trace.len()
    );
    fmt_row("static", "seq", &seq);
    for (w, s) in &static_rows {
        fmt_row("static", &format!("{w}w"), s);
    }
    fmt_row("faulty", "seq", &fseq);
    for (w, s) in &faulty_rows {
        fmt_row("faulty", &format!("{w}w"), s);
    }
    let hit_rate = on.cache_hits as f64 / (on.cache_hits + on.cache_misses).max(1) as f64;
    println!(
        "\nadaptive        cache off: {} solver calls, {:.3}s rescheduling",
        off.calls, off.resched_wall_s
    );
    println!(
        "adaptive        cache on:  {} solver calls, {} hits / {} misses ({:.0}% hit rate), {:.3}s rescheduling",
        on.calls,
        on.cache_hits,
        on.cache_misses,
        100.0 * hit_rate,
        on.resched_wall_s
    );
    println!("\ndeterminism: PASS (all parallel summaries identical to sequential)");

    // ---- Hand-rolled JSON artifact. ----
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"mpeg/{}\",\n  \"instances\": {},\n  \"smoke\": {smoke},\n",
        movie.name,
        trace.len()
    ));
    let rows_json = |rows: &[(usize, RunSummary)], seq: &RunSummary| {
        let mut s = format!(
            "{{\"seq\": {{\"wall_s\": {:.6}, \"inst_per_s\": {:.1}}}",
            seq.wall_s,
            seq.throughput()
        );
        for (w, r) in rows {
            s.push_str(&format!(
                ", \"{w}w\": {{\"wall_s\": {:.6}, \"inst_per_s\": {:.1}}}",
                r.wall_s,
                r.throughput()
            ));
        }
        s.push('}');
        s
    };
    json.push_str(&format!(
        "  \"static\": {},\n",
        rows_json(&static_rows, &seq)
    ));
    json.push_str(&format!(
        "  \"faulty\": {},\n",
        rows_json(&faulty_rows, &fseq)
    ));
    json.push_str(&format!(
        "  \"adaptive\": {{\"calls_off\": {}, \"calls_on\": {}, \"reschedules\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.4}, \
         \"resched_wall_off_s\": {:.6}, \"resched_wall_on_s\": {:.6}}},\n",
        off.calls,
        on.calls,
        on.reschedules,
        on.cache_hits,
        on.cache_misses,
        hit_rate,
        off.resched_wall_s,
        on.resched_wall_s
    ));
    json.push_str("  \"determinism\": \"pass\"\n}\n");
    std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");
}
