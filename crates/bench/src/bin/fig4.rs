//! Figure 4 — branch selection of the MPEG `mb_type` fork over 1000
//! macroblocks, the windowed probability (window 50) and the
//! threshold-filtered probability (threshold 0.1) that drives re-scheduling.
//!
//! Prints a CSV (`instance,selection,windowed,filtered`) so the figure can
//! be re-plotted directly, followed by a summary of the filter behaviour.

use ctg_workloads::{mpeg, stats, traces};

const WINDOW: usize = 50;
const THRESHOLD: f64 = 0.1;
const INSTANCES: usize = 1000;

fn main() {
    let ctg = mpeg::mpeg_ctg();
    // The paper plots branch "b1" — the mb_type fork.
    let branch = mpeg::BRANCH_TYPE;
    let movie = &traces::movie_presets()[5]; // Shuttle: the most dynamic clip
    let trace = traces::generate_trace(&ctg, &movie.profile, INSTANCES);

    let series = stats::profile_series(&ctg, &trace, branch, 0, WINDOW, THRESHOLD);
    println!("instance,selection,windowed_prob,filtered_prob");
    for p in &series {
        println!(
            "{},{},{:.4},{:.4}",
            p.instance, p.selection, p.windowed, p.filtered
        );
    }
    let updates = stats::update_count(&series);
    eprintln!(
        "\nfiltered-probability updates (≙ scheduling/DVFS invocations): {updates} \
         over {INSTANCES} instances (window {WINDOW}, threshold {THRESHOLD})"
    );
    eprintln!(
        "movie preset: {} — the windowed probability drifts slowly while \
         individual selections stay unpredictable, as in the paper's Figure 4",
        movie.name
    );
}
