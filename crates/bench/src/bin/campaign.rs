//! Campaign bench — the fleet-scale what-if engine (`ctg_sim::campaign`)
//! over a fig. 5/6-style sensitivity grid: workloads × deadline factors ×
//! fault rates × arrival processes × adaptive knobs, every cell a full
//! multi-stream serve run.
//!
//! The full grid (288 cells × 8 streams × 480 instances ≈ 1.1M simulated
//! instances) exercises everything the campaign engine exists for:
//!
//! * **setup amortization** — 288 cells share 8 compiled
//!   (workload, deadline) artifacts, so workload construction, deadline
//!   calibration and drift-trace generation are paid 8 times, not 288;
//! * **work stealing** — cell costs vary widely across knobs and fault
//!   rates, and the one-at-a-time claim discipline keeps workers busy;
//! * **bounded memory** — cells stream to JSONL and only the fixed-size
//!   roll-up stays resident (peak RSS is reported to prove it);
//! * **checkpoint/resume** — smoke runs kill the campaign halfway
//!   (simulated by truncating the JSONL mid-line) and assert the resumed
//!   roll-up is bit-identical to the uninterrupted one.
//!
//! Pass `--smoke` for a seconds-scale run (CI); numbers land in
//! `BENCH_campaign.json`, or `target/BENCH_campaign_smoke.json` for smoke
//! runs so CI never clobbers the committed full-run artifact.

use ctg_bench::setup::{prepare_case, prepare_cruise, prepare_mpeg, profile_trace};
use ctg_sched::SchedError;
use ctg_sim::campaign::{
    campaign_workers, run_campaign, ArrivalSpec, Artifact, CampaignConfig, CampaignSpec, KnobSpec,
};
use ctg_workloads::traces::{self, DriftProfile};
use tgff_gen::{Category, TgffConfig};

const TRACE_SEED: u64 = 0x7A5C_BA5E;
const TGFF_SEED: u64 = 31;

/// Resolves a workload × platform label pair to a compiled artifact.
///
/// Workload labels: `mpeg`, `cruise`, or `tgff-<tasks>-<branches>`.
/// Platform labels: `dl<factor>` — the paper's deadline calibration
/// (deadline = factor × the nominal DLS makespan).
fn compile(workload: &str, platform: &str, trace_len: usize) -> Result<Artifact, SchedError> {
    let factor: f64 = platform
        .strip_prefix("dl")
        .and_then(|s| s.parse().ok())
        .expect("platform label is dl<factor>");
    let (ctx, gen_probs) = match workload {
        "mpeg" => (prepare_mpeg(factor), None),
        "cruise" => (prepare_cruise(factor), None),
        tgff => {
            let mut parts = tgff
                .strip_prefix("tgff-")
                .expect("workload label is mpeg|cruise|tgff-<t>-<b>")
                .split('-');
            let tasks: usize = parts.next().unwrap().parse().expect("tgff task count");
            let branches: usize = parts.next().unwrap().parse().expect("tgff branch count");
            let cfg = TgffConfig::new(TGFF_SEED, tasks, branches, Category::ForkJoin);
            let case = prepare_case(&cfg, 3, factor);
            (case.ctx, Some(case.probs))
        }
    };
    // One drift movie per workload label; deadline factor leaves the graph
    // (and so the trace) unchanged, but the artifact is per-pair anyway —
    // regenerating it is exactly the redundant setup the cache absorbs.
    let seed = TRACE_SEED
        ^ workload
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(257).wrapping_add(b as u64));
    let trace = traces::generate_trace(ctx.ctg(), &DriftProfile::new(seed), trace_len);
    let probs = match gen_probs {
        // TGFF cases: the generator's "true" average probabilities.
        Some(p) => p,
        // Library applications: empirical profile of the trace head.
        None => profile_trace(&ctx, &trace[..trace_len.min(40)]),
    };
    Ok(Artifact { ctx, probs, trace })
}

fn full_spec() -> CampaignSpec {
    CampaignSpec {
        name: "fig56-sensitivity".into(),
        workloads: vec![
            "mpeg".into(),
            "cruise".into(),
            "tgff-20-2".into(),
            "tgff-26-3".into(),
        ],
        platforms: vec!["dl1.6".into(), "dl2.0".into()],
        fault_rates: vec![0.0, 0.02, 0.05],
        arrivals: vec![ArrivalSpec::ClosedLoop, ArrivalSpec::Poisson { rate: 0.05 }],
        knobs: [
            (10usize, 0.05),
            (10, 0.1),
            (10, 0.25),
            (20, 0.05),
            (20, 0.1),
            (20, 0.25),
        ]
        .iter()
        .map(|&(window, threshold)| KnobSpec { window, threshold })
        .collect(),
        schedulers: vec!["dls".into()],
        streams: 8,
        seed: 0xF16_5600D,
        explicit: Vec::new(),
    }
}

fn smoke_spec() -> CampaignSpec {
    CampaignSpec {
        name: "fig56-sensitivity-smoke".into(),
        workloads: vec!["mpeg".into(), "tgff-20-2".into()],
        platforms: vec!["dl2.0".into()],
        fault_rates: vec![0.0, 0.05],
        arrivals: vec![ArrivalSpec::ClosedLoop],
        knobs: vec![
            KnobSpec {
                window: 20,
                threshold: 0.1,
            },
            KnobSpec {
                window: 10,
                threshold: 0.25,
            },
        ],
        schedulers: vec!["dls".into()],
        streams: 4,
        seed: 0xF16_5600D,
        explicit: Vec::new(),
    }
}

/// High-water-mark RSS of this process in MiB (0.0 where /proc is absent).
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("VmHWM:"))
                .and_then(|v| v.trim().strip_suffix("kB"))
                .and_then(|v| v.trim().parse::<f64>().ok())
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// Truncates the cell stream to its first `keep` lines plus a garbage
/// partial tail — the on-disk state a campaign killed mid-write leaves.
fn mangle_checkpoint(path: &std::path::Path, keep: usize) -> usize {
    let data = std::fs::read_to_string(path).expect("read cell stream");
    let total = data.lines().count();
    let mut kept = String::new();
    for line in data.lines().take(keep) {
        kept.push_str(line);
        kept.push('\n');
    }
    kept.push_str("{\"cell\":\"dead");
    std::fs::write(path, kept).expect("rewrite truncated stream");
    total
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_len = if smoke { 60 } else { 480 };
    let spec = if smoke { smoke_spec() } else { full_spec() };
    let cells_total = spec.cells().len();
    let workers = campaign_workers();
    std::fs::create_dir_all("target").expect("create target dir");
    let jsonl = if smoke {
        "target/campaign_cells_smoke.jsonl"
    } else {
        "target/campaign_cells.jsonl"
    };
    println!(
        "campaign bench: {} ({} workloads x {} deadlines x {} faults x {} arrivals x {} knobs \
         = {} cells, {} streams x {} instances per cell, {} workers)",
        spec.name,
        spec.workloads.len(),
        spec.platforms.len(),
        spec.fault_rates.len(),
        spec.arrivals.len(),
        spec.knobs.len(),
        cells_total,
        spec.streams,
        trace_len,
        workers,
    );

    let compile_fn =
        move |w: &str, p: &str| -> Result<Artifact, SchedError> { compile(w, p, trace_len) };
    let cfg = CampaignConfig::new(jsonl);
    let report = run_campaign(&spec, &compile_fn, &cfg).expect("campaign runs");
    let r = &report;
    let cells_per_s = r.cells_run as f64 / r.wall_s;
    let inst_per_s = r.rollup.instances as f64 / r.wall_s;
    // Setup amortization: what compiling per cell *would* have cost
    // (mean compile × cells) over what the shared cache actually paid.
    let amortization = if r.compiles > 0 && r.compile_s > 0.0 {
        (r.compile_s / r.compiles as f64) * r.cells_run as f64 / r.compile_s
    } else {
        1.0
    };
    println!(
        "  ran {} cells ({} resumed) in {:.2}s: {:.1} cells/s, {:.0} inst/s \
         ({} instances, {} events)",
        r.cells_run,
        r.cells_resumed,
        r.wall_s,
        cells_per_s,
        inst_per_s,
        r.rollup.instances,
        r.rollup.events,
    );
    println!(
        "  artifacts: {} compiles ({:.2}s) serving {} cells -> amortization x{:.1}",
        r.compiles, r.compile_s, r.cells_run, amortization,
    );
    println!(
        "  rollup: miss rate {:.4}  resched/inst {:.4}  energy {:.1}  peak rss {:.1} MiB",
        r.rollup.deadline_misses as f64 / r.rollup.instances.max(1) as f64,
        r.rollup.reschedules as f64 / r.rollup.instances.max(1) as f64,
        r.rollup.total_energy,
        peak_rss_mb(),
    );

    if !smoke {
        assert!(
            r.rollup.instances >= 1_000_000,
            "full campaign must simulate >= 1M instances, got {}",
            r.rollup.instances
        );
        assert!(
            amortization >= 10.0,
            "artifact cache must amortize setup >= 10x, got {amortization:.1}"
        );
    }

    // Kill/resume drill: truncate the stream to half its cells plus a
    // partial garbage tail, resume, and demand a bit-identical roll-up.
    let total_lines = mangle_checkpoint(std::path::Path::new(jsonl), cells_total / 2);
    assert_eq!(total_lines, cells_total, "one line per cell");
    let resumed_report = run_campaign(
        &spec,
        &compile_fn,
        &CampaignConfig {
            resume: true,
            ..CampaignConfig::new(jsonl)
        },
    )
    .expect("resumed campaign runs");
    assert_eq!(resumed_report.cells_resumed, cells_total / 2);
    assert_eq!(
        resumed_report.rollup, r.rollup,
        "resumed roll-up must equal the uninterrupted roll-up"
    );
    assert_eq!(
        resumed_report.rollup.total_energy.to_bits(),
        r.rollup.total_energy.to_bits(),
        "resumed roll-up energy must be bit-identical"
    );
    println!(
        "  resume drill: {} resumed + {} re-run -> roll-up bit-identical: PASS",
        resumed_report.cells_resumed, resumed_report.cells_run
    );

    let out = if smoke {
        "target/BENCH_campaign_smoke.json"
    } else {
        "BENCH_campaign.json"
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"campaign\": \"{}\",\n",
            "  \"grid\": {{\"workloads\": {}, \"deadline_factors\": {}, \"fault_rates\": {}, ",
            "\"arrivals\": {}, \"knobs\": {}}},\n",
            "  \"cells\": {},\n  \"streams_per_cell\": {},\n  \"trace_len\": {},\n",
            "  \"workers\": {},\n  \"smoke\": {},\n",
            "  \"instances\": {},\n  \"wall_s\": {:.2},\n  \"cells_per_s\": {:.2},\n",
            "  \"inst_per_s\": {:.1},\n",
            "  \"compiles\": {},\n  \"artifact_hits\": {},\n  \"compile_s\": {:.3},\n",
            "  \"setup_amortization\": {:.1},\n  \"peak_rss_mb\": {:.1},\n",
            "  \"resume_drill\": \"pass\",\n",
            "  \"rollup\": {}\n",
            "}}\n"
        ),
        spec.name,
        spec.workloads.len(),
        spec.platforms.len(),
        spec.fault_rates.len(),
        spec.arrivals.len(),
        spec.knobs.len(),
        cells_total,
        spec.streams,
        trace_len,
        workers,
        smoke,
        r.rollup.instances,
        r.wall_s,
        cells_per_s,
        inst_per_s,
        r.compiles,
        r.artifact_hits,
        r.compile_s,
        amortization,
        peak_rss_mb(),
        r.rollup.to_json(),
    );
    ctg_obs::json::parse(&json).expect("bench artifact must be valid JSON");
    std::fs::write(out, json).expect("write bench artifact");
    println!("wrote {out}");
}
