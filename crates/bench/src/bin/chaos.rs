//! Chaos sweep — fault-injection rates × severities over TGFF and MPEG
//! workloads, driven through the resilient adaptive runner (extension; not
//! a paper table).
//!
//! For every workload the harness sweeps a grid of fault rates (applied
//! uniformly to overruns, stalls, DVFS denials and retransmits) and overrun
//! severities, printing one CSV row per cell: average energy, miss rate and
//! the degradation-ladder counters. The whole sweep is then repeated with
//! the same seeds and both passes are compared field by field — any
//! difference aborts the run, making the determinism guarantee of
//! [`ctg_sim::FaultPlan`] an executable check rather than a comment.
//!
//! Expected shape: miss rate grows (weakly) with the fault rate, the ladder
//! escalates under heavy faults instead of erroring out, and the zero-rate
//! column reproduces the fault-free adaptive numbers.

use ctg_bench::setup::{prepare_case, prepare_mpeg};
use ctg_model::DecisionVector;
use ctg_sched::{AdaptiveScheduler, SchedContext};
use ctg_sim::{
    map_ordered, run_adaptive_resilient, worker_count, BurstModel, DegradeConfig, FaultPlan,
    RunSummary,
};
use ctg_workloads::traces::{self, DriftProfile};

const LEN: usize = 400;
const WINDOW: usize = 20;
const THRESHOLD: f64 = 0.2;
const RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
const SEVERITIES: [f64; 3] = [1.2, 1.5, 2.0];
const FAULT_SEED: u64 = 0xC4A0_5EED;

struct Workload {
    name: &'static str,
    ctx: SchedContext,
    trace: Vec<DecisionVector>,
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for (i, (cfg, pes)) in tgff_gen::table1_cases().iter().take(2).enumerate() {
        let case = prepare_case(cfg, *pes, 1.6);
        let profile = DriftProfile::new(9100 + i as u64);
        let trace = traces::generate_trace(case.ctx.ctg(), &profile, LEN);
        out.push(Workload {
            name: if i == 0 {
                "tgff-forkjoin"
            } else {
                "tgff-layered"
            },
            ctx: case.ctx,
            trace,
        });
    }
    let ctx = prepare_mpeg(2.0);
    let trace = traces::generate_trace(ctx.ctg(), &DriftProfile::new(9200), LEN);
    out.push(Workload {
        name: "mpeg",
        ctx,
        trace,
    });
    out
}

fn plan_for(rate: f64, severity: f64) -> FaultPlan {
    let mut plan = FaultPlan::uniform(FAULT_SEED, rate);
    plan.overrun_factor = severity;
    plan
}

/// Burst scenario probabilities: `0.0` is the uniform-rate control, the
/// others enter the Gilbert–Elliott bad state ever more eagerly.
const BURST_P_ENTER: [f64; 3] = [0.0, 0.05, 0.2];
const BURST_BASE_RATE: f64 = 0.02;
const BURST_MULTIPLIER: f64 = 8.0;

fn burst_plan(p_enter: f64) -> FaultPlan {
    let mut plan = FaultPlan::uniform(FAULT_SEED ^ 0xB135, BURST_BASE_RATE);
    plan.overrun_factor = 1.5;
    if p_enter > 0.0 {
        plan.burst = Some(BurstModel {
            p_enter,
            p_exit: 0.25,
            rate_multiplier: BURST_MULTIPLIER,
        });
    }
    plan
}

fn run_burst_cell(w: &Workload, p_enter: f64) -> RunSummary {
    let probs = ctg_model::BranchProbs::uniform(w.ctx.ctg());
    let manager = AdaptiveScheduler::new(&w.ctx, probs, WINDOW, THRESHOLD).expect("manager builds");
    let (summary, _) = run_adaptive_resilient(
        &w.ctx,
        manager,
        &w.trace,
        &burst_plan(p_enter),
        &DegradeConfig::default(),
    )
    .expect("resilient runner never fails on recoverable faults");
    summary
}

fn run_cell(w: &Workload, rate: f64, severity: f64) -> RunSummary {
    let probs = ctg_model::BranchProbs::uniform(w.ctx.ctg());
    let manager = AdaptiveScheduler::new(&w.ctx, probs, WINDOW, THRESHOLD).expect("manager builds");
    let (summary, _) = run_adaptive_resilient(
        &w.ctx,
        manager,
        &w.trace,
        &plan_for(rate, severity),
        &DegradeConfig::default(),
    )
    .expect("resilient runner never fails on recoverable faults");
    summary
}

fn sweep(workloads: &[Workload], workers: usize) -> Vec<(String, RunSummary)> {
    // Enumerate the grid first, then fan the independent cells out over the
    // pool; submission-ordered merging keeps the output identical to the
    // old sequential nested loops.
    let mut cells = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        for &severity in &SEVERITIES {
            for &rate in &RATES {
                let key = format!("{},{rate:.2},{severity:.1}", w.name);
                cells.push((key, wi, rate, severity));
            }
        }
    }
    let summaries = map_ordered(&cells, workers, |_, &(_, wi, rate, severity)| {
        run_cell(&workloads[wi], rate, severity)
    });
    cells
        .into_iter()
        .zip(summaries)
        .map(|((key, _, _, _), s)| (key, s))
        .collect()
}

fn main() {
    let ws = workloads();
    let workers = worker_count();
    let first = sweep(&ws, workers);

    println!(
        "workload,rate,severity,avg_energy,miss_rate,overruns,stalls,denials,\
         retransmits,guard_band,safe_mode,unschedulable,recoveries,rejected,failed,calls"
    );
    for (key, s) in &first {
        println!(
            "{key},{:.4},{:.4},{},{},{},{},{},{},{},{},{},{},{}",
            s.avg_energy(),
            s.miss_rate(),
            s.faults.overruns,
            s.faults.stalls,
            s.faults.denials,
            s.faults.retransmits,
            s.degrade.guard_band_escalations,
            s.degrade.safe_mode_escalations,
            s.degrade.unschedulable_events,
            s.degrade.recoveries,
            s.degrade.rejected_reschedules,
            s.degrade.failed_reschedules,
            s.calls,
        );
    }

    // Determinism: re-running the sweep on a single worker must reproduce
    // every parallel cell bit-for-bit (the pool's ordered-merge guarantee
    // as an executable check, on top of the FaultPlan seed guarantee).
    let second = sweep(&ws, 1);
    assert_eq!(first.len(), second.len());
    for ((k1, s1), (k2, s2)) in first.iter().zip(&second) {
        assert_eq!(k1, k2);
        assert_eq!(s1, s2, "non-deterministic chaos cell {k1}");
    }
    println!(
        "\ndeterminism: PASS ({} cells reproduced bit-for-bit, {workers} workers vs 1)",
        first.len()
    );

    // Shape check: miss rate should not decrease as the fault rate grows
    // (weak monotonicity per workload × severity).
    let mut violations = 0;
    for chunk in first.chunks(RATES.len()) {
        for pair in chunk.windows(2) {
            if pair[1].1.miss_rate() + 1e-12 < pair[0].1.miss_rate() {
                violations += 1;
            }
        }
    }
    println!(
        "monotonicity: {violations} inversions across {} adjacent rate pairs",
        { first.len() / RATES.len() * (RATES.len() - 1) }
    );

    // Gilbert–Elliott burst scenario: the same base rate modulated by a
    // two-state burst chain. Correlated fault storms are what the serve
    // engine's overload layer is built for; here the resilient runner
    // shows the raw pressure curve (fault volume and miss rate vs burst
    // intensity) and that the burst chain is exactly reproducible.
    println!("\nburst scenario (base rate {BURST_BASE_RATE}, x{BURST_MULTIPLIER} in bad state):");
    println!("workload,p_enter,avg_energy,miss_rate,faults,guard_band,safe_mode");
    let mut burst_rows: Vec<(f64, RunSummary)> = Vec::new();
    for w in &ws {
        for &p_enter in &BURST_P_ENTER {
            let s = run_burst_cell(w, p_enter);
            println!(
                "{},{p_enter:.2},{:.4},{:.4},{},{},{}",
                w.name,
                s.avg_energy(),
                s.miss_rate(),
                s.faults.overruns + s.faults.stalls + s.faults.denials + s.faults.retransmits,
                s.degrade.guard_band_escalations,
                s.degrade.safe_mode_escalations,
            );
            burst_rows.push((p_enter, s));
        }
    }
    // Determinism: every burst cell must reproduce bit-for-bit.
    for (w, chunk) in ws.iter().zip(burst_rows.chunks(BURST_P_ENTER.len())) {
        for (p_enter, s) in chunk {
            let again = run_burst_cell(w, *p_enter);
            assert_eq!(
                &again, s,
                "non-deterministic burst cell {}/{p_enter}",
                w.name
            );
        }
        // Pressure check: the stormiest chain must inject at least as many
        // faults as the uniform control on every workload.
        let volume = |s: &RunSummary| {
            s.faults.overruns + s.faults.stalls + s.faults.denials + s.faults.retransmits
        };
        assert!(
            volume(&chunk[chunk.len() - 1].1) >= volume(&chunk[0].1),
            "{}: burst storms must not inject fewer faults than the control",
            w.name
        );
    }
    println!(
        "burst determinism: PASS ({} cells reproduced bit-for-bit)",
        burst_rows.len()
    );
}
