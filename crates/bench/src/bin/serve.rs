//! Serving bench — the multi-stream engine (`ctg_sim::serve`) against
//! independent per-stream `AdaptiveScheduler`s on the MPEG drift workload,
//! at 1/8/64/256 streams (perf extension; not a paper table).
//!
//! The stream population models a decoder farm: a pool of 8 distinct
//! drift "movies", each watched by several sessions at different playback
//! offsets. Same-movie same-tick sessions exercise reschedule
//! *coalescing*; offset sessions revisit each other's probability regimes
//! a few hundred ticks apart and exercise the *cross-stream shared cache*
//! (a per-stream cache cannot serve those — the regime is new to that
//! session's own history).
//!
//! Reported per stream count: aggregate instances/s and reschedules/s,
//! per-stream (isolated) vs shared cache hit rates, coalescing factor, and
//! the speedup over the independent-manager baseline. Determinism is
//! asserted, not sampled: per-stream summaries must be bit-identical
//! across worker counts, shard counts and cache modes. Pass `--smoke` for
//! a seconds-scale run (CI); numbers land in `BENCH_serve.json`, or in
//! `target/BENCH_serve_smoke.json` for smoke runs so CI never clobbers
//! the committed full-run artifact.
//!
//! Two event-engine extensions ride along:
//!
//! * `--compare-lockstep` re-runs every stream count on the retired
//!   lockstep engine (asserting bit-equal summaries) and records both
//!   engines' instance throughput plus the crossover stream count;
//! * a *scale* row drives 10k (smoke) / 100k (full) short-trace streams
//!   under Poisson arrivals with a latency SLO — the open-loop regime the
//!   lockstep engine cannot express — reporting latency percentiles and
//!   the SLO-violation rate.

use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_model::DecisionVector;
use ctg_obs::{chrome, json, BufferedSink, Event, EventKind, Obs};
use ctg_sched::{
    AdaptiveScheduler, OnlineScheduler, SchedulerKind, SolverWorkspace, DEFAULT_PORTFOLIO,
};
use ctg_sim::serve::{
    run_serve, AdmissionConfig, ArrivalConfig, ArrivalKind, CacheMode, EngineKind,
    QuarantineConfig, ServeConfig, ServeReport, StreamSpec,
};
use ctg_sim::{map_ordered, run_adaptive, worker_count, BurstModel, FaultPlan, RunConfig, Runner};
use ctg_workloads::traces::{self, DriftProfile};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const WINDOW: usize = 20;
const THRESHOLD: f64 = 0.1;
const SEED_POOL: usize = 8;
const BASE_SEED: u64 = 0x05EE_D00D;
const PER_STREAM_CAPACITY: usize = 64;
const SHARED_CAPACITY: usize = 4096;
const SHARED_STRIPES: usize = 16;

fn rotated(base: &[DecisionVector], offset: usize) -> Vec<DecisionVector> {
    let mut t = Vec::with_capacity(base.len());
    t.extend_from_slice(&base[offset..]);
    t.extend_from_slice(&base[..offset]);
    t
}

/// `streams` sessions over a pool of [`SEED_POOL`] drift movies; session
/// `i` plays movie `i % SEED_POOL` at one of two playback offsets. Beyond
/// 16 streams the population therefore contains *duplicate* sessions
/// (several viewers hit play on the same movie at the same moment — the
/// coalescer's case) and *lagged* sessions 37 ticks apart (the shared
/// cache's case: the leader inserts each regime's plan, the laggard
/// replays it).
fn stream_specs(
    ctx: &ctg_sched::SchedContext,
    streams: usize,
    trace_len: usize,
) -> Vec<StreamSpec> {
    let movies: Vec<Vec<DecisionVector>> = (0..SEED_POOL)
        .map(|m| {
            traces::generate_trace(
                ctx.ctg(),
                &DriftProfile::new(BASE_SEED + m as u64),
                trace_len,
            )
        })
        .collect();
    (0..streams)
        .map(|i| {
            let base = &movies[i % SEED_POOL];
            let offset = ((i / SEED_POOL) % 2) * 37 % trace_len;
            let trace = rotated(base, offset);
            let initial = profile_trace(ctx, &trace[..trace_len.min(40)]);
            StreamSpec {
                trace,
                initial_probs: initial,
                window: WINDOW,
                threshold: THRESHOLD,
                fault_plan: None,
                criticality: 0,
            }
        })
        .collect()
}

fn serve_cfg(workers: usize, shards: usize, cache: CacheMode) -> ServeConfig {
    ServeConfig {
        workers,
        shards,
        cache,
        coalesce: true,
        quantum: THRESHOLD,
        solve_budget: None,
        intra_solve_workers: 1,
        admission: None,
        quarantine: None,
        ..ServeConfig::default()
    }
}

struct Baseline {
    reschedules: usize,
    wall_s: f64,
}

/// The pre-serve architecture: one independent `AdaptiveScheduler` (with
/// its own PR 2 schedule cache) per stream, run over the worker pool.
/// Nothing is shared, nothing coalesces.
fn run_independent(
    ctx: &ctg_sched::SchedContext,
    specs: &[StreamSpec],
    workers: usize,
) -> Baseline {
    let start = Instant::now();
    let summaries = map_ordered(specs, workers, |_, spec| {
        let mut mgr =
            AdaptiveScheduler::new(ctx, spec.initial_probs.clone(), spec.window, spec.threshold)
                .expect("manager builds");
        mgr.enable_cache(ctx, PER_STREAM_CAPACITY);
        let (summary, _) = run_adaptive(ctx, mgr, &spec.trace).expect("adaptive run");
        summary
    });
    Baseline {
        reschedules: summaries.iter().map(|s| s.reschedules).sum(),
        wall_s: start.elapsed().as_secs_f64(),
    }
}

fn assert_same_streams(a: &ServeReport, b: &ServeReport, what: &str) {
    assert_eq!(a.streams.len(), b.streams.len(), "{what}: stream count");
    for (i, (x, y)) in a.streams.iter().zip(&b.streams).enumerate() {
        assert_eq!(x, y, "{what}: stream {i} summary diverged");
        assert_eq!(
            x.exec.total_energy.to_bits(),
            y.exec.total_energy.to_bits(),
            "{what}: stream {i} energy bits"
        );
    }
}

/// Per-stage aggregate over one telemetry-on run: span count + total busy
/// time, plus instant count (stages like `cache_hit` are instants only).
#[derive(Default, Clone, Copy)]
struct StageAgg {
    spans: usize,
    span_us: f64,
    instants: usize,
}

fn aggregate_stages(events: &[Event]) -> BTreeMap<&'static str, StageAgg> {
    let mut agg: BTreeMap<&'static str, StageAgg> = BTreeMap::new();
    for e in events {
        let entry = agg.entry(e.stage.name()).or_default();
        match e.kind {
            EventKind::Span => {
                entry.spans += 1;
                entry.span_us += e.dur_ns as f64 / 1_000.0;
            }
            EventKind::Instant => entry.instants += 1,
        }
    }
    agg
}

fn stages_json(agg: &BTreeMap<&'static str, StageAgg>) -> String {
    let fields: Vec<String> = agg
        .iter()
        .map(|(name, a)| {
            format!(
                "{{\"stage\": \"{name}\", \"spans\": {}, \"span_us\": {:.1}, \
                 \"instants\": {}}}",
                a.spans, a.span_us, a.instants
            )
        })
        .collect();
    format!("[{}]", fields.join(", "))
}

/// One point of the overload sweep: the engine under a Gilbert–Elliott
/// fault storm with budgets, admission control and quarantine active.
struct OverloadRow {
    p_enter: f64,
    shed_requests: usize,
    shed_rate: f64,
    quarantines: usize,
    quarantined_ticks: usize,
    budget_exceeded: usize,
    miss_rate: f64,
}

/// The sweep population: the drift-movie sessions of [`stream_specs`] with
/// staggered criticalities and (for `p_enter > 0`) a burst-modulated fault
/// plan driving correlated miss storms.
fn overload_specs(
    ctx: &ctg_sched::SchedContext,
    streams: usize,
    trace_len: usize,
    p_enter: f64,
) -> Vec<StreamSpec> {
    let mut specs = stream_specs(ctx, streams, trace_len);
    for (i, spec) in specs.iter_mut().enumerate() {
        spec.criticality = (i % 4) as u8;
        if p_enter > 0.0 {
            let mut plan = FaultPlan::uniform(0xB0057 + i as u64, 0.02);
            plan.burst = Some(BurstModel {
                p_enter,
                p_exit: 0.25,
                rate_multiplier: 8.0,
            });
            spec.fault_plan = Some(plan);
        }
    }
    specs
}

/// Deterministic work-unit cost of one representative cold solve, used to
/// pin the sweep's budget just below it so a realistic fraction of
/// re-solves abort.
fn typical_solve_cost(ctx: &ctg_sched::SchedContext, specs: &[StreamSpec]) -> u64 {
    let mut ws = SolverWorkspace::new();
    OnlineScheduler::new()
        .solve_with_workspace(ctx, &specs[0].initial_probs, &mut ws)
        .expect("budget probe solve");
    ws.last_solve_cost().expect("probe solve recorded its cost")
}

fn overload_sweep(
    ctx: &ctg_sched::SchedContext,
    trace_len: usize,
    smoke: bool,
    workers: usize,
) -> Vec<OverloadRow> {
    let streams = if smoke { 16 } else { 64 };
    let high_water = (streams / 8).max(1);
    let budget = {
        let probe = overload_specs(ctx, streams, trace_len, 0.0);
        let cost = typical_solve_cost(ctx, &probe);
        cost - cost / 8
    };
    let cache = CacheMode::Shared {
        capacity: SHARED_CAPACITY,
        stripes: SHARED_STRIPES,
    };
    let overload_cfg = |workers: usize, shards: usize| ServeConfig {
        solve_budget: Some(budget),
        admission: Some(AdmissionConfig { high_water }),
        quarantine: Some(QuarantineConfig::default()),
        ..serve_cfg(workers, shards, cache)
    };
    println!(
        "\noverload sweep ({streams} streams, budget {budget} units, \
         high-water {high_water}):"
    );
    let mut rows = Vec::new();
    for &p_enter in &[0.0, 0.05, 0.2] {
        let specs = overload_specs(ctx, streams, trace_len, p_enter);
        let report =
            run_serve(ctx, &specs, &overload_cfg(workers, streams)).expect("overload serve run");
        // Every shed and quarantine decision must survive resharding.
        let resharded = run_serve(
            ctx,
            &specs,
            &overload_cfg(workers.div_ceil(2), (streams / 2).max(1)),
        )
        .expect("resharded overload run");
        assert_same_streams(
            &report,
            &resharded,
            &format!("overload p_enter={p_enter}: resharded"),
        );
        let misses: usize = report.streams.iter().map(|s| s.exec.deadline_misses).sum();
        let miss_rate = if report.stats.instances > 0 {
            misses as f64 / report.stats.instances as f64
        } else {
            0.0
        };
        println!(
            "  burst p_enter {p_enter:>4.2}: shed {:>5} ({:>5.1}%)  \
             quarantines {:>3} ({:>4} frozen ticks)  budget aborts {:>4}  \
             miss rate {:>5.2}%",
            report.stats.shed_requests,
            100.0 * report.stats.shed_rate(),
            report.stats.quarantines,
            report.stats.quarantined_ticks,
            report.stats.budget_exceeded,
            100.0 * miss_rate
        );
        rows.push(OverloadRow {
            p_enter,
            shed_requests: report.stats.shed_requests,
            shed_rate: report.stats.shed_rate(),
            quarantines: report.stats.quarantines,
            quarantined_ticks: report.stats.quarantined_ticks,
            budget_exceeded: report.stats.budget_exceeded,
            miss_rate,
        });
    }
    rows
}

struct Row {
    streams: usize,
    instances: usize,
    inst_per_s: f64,
    resched_per_s: f64,
    coalescing_factor: f64,
    per_stream_hit_rate: f64,
    shared_hit_rate: f64,
    solver_calls_shared: usize,
    solver_calls_independent: usize,
    baseline_resched_per_s: f64,
    speedup: f64,
    lockstep_inst_per_s: Option<f64>,
    stages: BTreeMap<&'static str, StageAgg>,
    metrics_json: String,
}

/// The event-engine scale point: thousands of short-trace streams under
/// Poisson arrivals with a latency SLO — queueing (and therefore latency
/// percentiles and SLO violations) only exists in this open-loop regime.
struct ScaleRow {
    streams: usize,
    instances: usize,
    inst_per_s: f64,
    arrival_rate: f64,
    slo: f64,
    latency_p50: f64,
    latency_p99: f64,
    latency_max: f64,
    slo_violation_rate: f64,
    max_queue_depth: usize,
    events: usize,
    shared_hit_rate: f64,
    wall_s: f64,
    /// Peak-RSS growth of the serve run divided by the stream count — the
    /// per-stream resident state (0 when an earlier, larger row already
    /// owns the high-water mark).
    per_stream_bytes: f64,
    /// `size_of::<AdaptiveScheduler>()` — the inline footprint every
    /// stream pays before any solve runs.
    mgr_size_bytes: usize,
    /// The previous PR's committed numbers for this row, where recorded —
    /// the before side of the lazy-workspace change.
    prev: Option<(f64, f64)>,
}

/// VmHWM (peak RSS) of this process in bytes (0.0 where /proc is absent).
fn peak_rss_bytes() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("VmHWM:"))
                .and_then(|v| v.trim().strip_suffix("kB"))
                .and_then(|v| v.trim().parse::<f64>().ok())
        })
        .map(|kb| kb * 1024.0)
        .unwrap_or(0.0)
}

/// `BENCH_serve.json`'s 100k row as committed before the adaptive manager
/// boxed its solver workspaces (PR 8): every stream carried two eagerly
/// built `SolverWorkspace`s it never solved through in the serve engine.
const PREV_100K: (f64, f64) = (23153.9, 51.83);

fn scale_run(ctx: &ctg_sched::SchedContext, streams: usize, workers: usize) -> ScaleRow {
    let trace_len = 12;
    let specs = stream_specs(ctx, streams, trace_len);
    let deadline = ctx.ctg().deadline();
    // Mean inter-arrival of half a deadline: a deliberately overloaded
    // open loop, so queues form and the SLO actually gets violated.
    let rate = 2.0 / deadline;
    let slo = 1.25 * deadline;
    let cfg = ServeConfig {
        arrival: ArrivalConfig {
            kind: ArrivalKind::Poisson { rate },
            slo: Some(slo),
            ..ArrivalConfig::default()
        },
        ..serve_cfg(
            workers,
            streams,
            CacheMode::Shared {
                capacity: SHARED_CAPACITY,
                stripes: SHARED_STRIPES,
            },
        )
    };
    let rss_before = peak_rss_bytes();
    let report = run_serve(ctx, &specs, &cfg).expect("scale serve run");
    let per_stream_bytes = ((peak_rss_bytes() - rss_before) / streams as f64).max(0.0);
    let slo_misses: usize = report.latencies.iter().map(|l| l.slo_misses).sum();
    let slo_violation_rate = if report.stats.instances > 0 {
        slo_misses as f64 / report.stats.instances as f64
    } else {
        0.0
    };
    println!(
        "\nscale ({streams} streams x {trace_len} instances, poisson rate {rate:.3}, \
         slo {slo:.1}): {:.0} inst/s  p50 {:.1}  p99 {:.1}  max {:.1}  \
         slo violations {:.2}%  max queue {}  ~{:.0} B/stream resident \
         (manager struct {} B)",
        report.stats.instances_per_s(),
        report.stats.latency_p50,
        report.stats.latency_p99,
        report.stats.latency_max,
        100.0 * slo_violation_rate,
        report.stats.max_queue_depth,
        per_stream_bytes,
        std::mem::size_of::<AdaptiveScheduler>(),
    );
    ScaleRow {
        streams,
        instances: report.stats.instances,
        inst_per_s: report.stats.instances_per_s(),
        arrival_rate: rate,
        slo,
        latency_p50: report.stats.latency_p50,
        latency_p99: report.stats.latency_p99,
        latency_max: report.stats.latency_max,
        slo_violation_rate,
        max_queue_depth: report.stats.max_queue_depth,
        events: report.stats.events,
        shared_hit_rate: report.stats.shared_hit_rate(),
        wall_s: report.stats.wall_s,
        per_stream_bytes,
        mgr_size_bytes: std::mem::size_of::<AdaptiveScheduler>(),
        prev: (streams == 100_000).then_some(PREV_100K),
    }
}

/// The portfolio point: the full shared-cache engine with scheduler
/// racing on every drift event, against the identical DLS-only run.
struct PortfolioRow {
    streams: usize,
    races: usize,
    wins: [usize; SchedulerKind::COUNT],
    total_energy: f64,
    dls_total_energy: f64,
    inst_per_s: f64,
}

fn portfolio_run(
    ctx: &ctg_sched::SchedContext,
    trace_len: usize,
    workers: usize,
    streams: usize,
) -> PortfolioRow {
    let specs = stream_specs(ctx, streams, trace_len);
    let shared_cache = CacheMode::Shared {
        capacity: SHARED_CAPACITY,
        stripes: SHARED_STRIPES,
    };
    let dls =
        run_serve(ctx, &specs, &serve_cfg(workers, streams, shared_cache)).expect("dls serve run");
    let cfg = ServeConfig {
        portfolio: Some(DEFAULT_PORTFOLIO.to_vec()),
        ..serve_cfg(workers, streams, shared_cache)
    };
    let report = run_serve(ctx, &specs, &cfg).expect("portfolio serve run");
    // Racing must not cost determinism: a resharded run (different worker
    // and shard split) reproduces every stream summary bit-for-bit.
    let resharded = run_serve(
        ctx,
        &specs,
        &ServeConfig {
            portfolio: Some(DEFAULT_PORTFOLIO.to_vec()),
            ..serve_cfg(workers.div_ceil(2), (streams / 2).max(1), shared_cache)
        },
    )
    .expect("resharded portfolio run");
    assert_same_streams(&resharded, &report, "portfolio: resharded");
    assert_eq!(
        resharded.stats.portfolio_wins, report.stats.portfolio_wins,
        "portfolio: win counters must survive resharding"
    );

    let energy = |r: &ServeReport| -> f64 { r.streams.iter().map(|s| s.exec.total_energy).sum() };
    let total_energy = energy(&report);
    let dls_total_energy = energy(&dls);
    assert!(
        total_energy <= dls_total_energy + 1e-6,
        "portfolio must not regress the DLS-only engine: {total_energy} > {dls_total_energy}"
    );
    let wins: Vec<String> = SchedulerKind::ALL
        .iter()
        .map(|k| format!("{k}:{}", report.stats.portfolio_wins[k.index()]))
        .collect();
    println!(
        "
portfolio ({streams} streams): {} races, wins {}, energy {:.1} vs dls {:.1} \
         ({:.2}% saved), {:.0} inst/s",
        report.stats.portfolio_races,
        wins.join(" "),
        total_energy,
        dls_total_energy,
        100.0 * (1.0 - total_energy / dls_total_energy),
        report.stats.instances_per_s(),
    );
    PortfolioRow {
        streams,
        races: report.stats.portfolio_races,
        wins: report.stats.portfolio_wins,
        total_energy,
        dls_total_energy,
        inst_per_s: report.stats.instances_per_s(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let compare_lockstep = args.iter().any(|a| a == "--compare-lockstep");
    let trace_path: Option<&str> = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1)
            .expect("--trace requires a file path")
            .as_str()
    });
    let trace_len = if smoke { 120 } else { 480 };
    let stream_counts: &[usize] = if smoke { &[1, 8, 64] } else { &[1, 8, 64, 256] };
    let workers = worker_count();

    let ctx = prepare_mpeg(2.0);
    println!(
        "serving bench on mpeg (pool of {SEED_POOL} drift movies, trace {trace_len}, \
         {workers} workers):\n"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut speedup_at_8 = 0.0_f64;
    let mut speedup_at_64 = 0.0_f64;
    let mut hit_split_at_64 = (0.0_f64, 0.0_f64);
    for &streams in stream_counts {
        let specs = stream_specs(&ctx, streams, trace_len);

        // Determinism reference: fully sequential, cache off.
        let reference =
            run_serve(&ctx, &specs, &serve_cfg(1, 1, CacheMode::Off)).expect("reference serve run");
        // Isolated per-stream caches (the "no sharing" engine).
        let isolated = run_serve(
            &ctx,
            &specs,
            &serve_cfg(
                workers,
                streams,
                CacheMode::PerStream {
                    capacity: PER_STREAM_CAPACITY,
                },
            ),
        )
        .expect("per-stream serve run");
        // The full engine: shared striped cache + coalescing.
        let shared_cache = CacheMode::Shared {
            capacity: SHARED_CAPACITY,
            stripes: SHARED_STRIPES,
        };
        // The speedup column divides two wall-clock timings. Small rows
        // finish in well under a second, where host scheduler noise is a
        // ±10% effect, so full runs repeat the timing pair (this run and
        // the independent baseline below) and keep the fastest sample.
        // Large rows run long enough that one sample is stable, and smoke
        // runs skip the wall-clock asserts anyway.
        let timing_reps = if !smoke && streams <= 64 { 3 } else { 1 };
        let shared = (0..timing_reps)
            .map(|_| {
                run_serve(&ctx, &specs, &serve_cfg(workers, streams, shared_cache))
                    .expect("shared serve run")
            })
            .min_by(|a, b| a.stats.wall_s.total_cmp(&b.stats.wall_s))
            .expect("at least one timing rep");
        // Same engine, different sharding/worker split: must be invisible.
        let resharded = run_serve(
            &ctx,
            &specs,
            &serve_cfg(workers.div_ceil(2), (streams / 2).max(1), shared_cache),
        )
        .expect("resharded serve run");

        assert_same_streams(
            &isolated,
            &reference,
            &format!("{streams}: per-stream vs ref"),
        );
        assert_same_streams(&shared, &reference, &format!("{streams}: shared vs ref"));
        assert_same_streams(
            &resharded,
            &shared,
            &format!("{streams}: resharded vs shared"),
        );
        assert_eq!(shared.stats.drift_events, reference.stats.drift_events);

        // Engine comparison: the lockstep engine over the same population
        // must reproduce the event engine's summaries bit-for-bit (the
        // closed-loop equivalence contract), and both throughputs go into
        // the artifact so the crossover is visible.
        let lockstep_inst_per_s = compare_lockstep.then(|| {
            let lockstep = run_serve(
                &ctx,
                &specs,
                &ServeConfig {
                    engine: EngineKind::Lockstep,
                    ..serve_cfg(workers, streams, shared_cache)
                },
            )
            .expect("lockstep serve run");
            assert_same_streams(
                &lockstep,
                &shared,
                &format!("{streams}: lockstep vs events"),
            );
            lockstep.stats.instances_per_s()
        });

        // Telemetry-on run through the unified `Runner` API: bit-identical
        // streams (asserted) plus a stage-level breakdown for the artifact.
        let sink = Arc::new(BufferedSink::new(workers.max(1)));
        let obs = Obs::with_sink(sink.clone());
        let traced = Runner::new(
            RunConfig::new()
                .workers(workers)
                .shards(streams)
                .cache(shared_cache)
                .obs(obs.clone()),
        )
        .serve(&ctx, &specs)
        .expect("telemetry-on serve run");
        assert_same_streams(&traced, &reference, &format!("{streams}: traced vs ref"));
        let events = sink.drain_sorted();
        let stages = aggregate_stages(&events);
        let metrics_json = obs
            .metrics_snapshot()
            .expect("enabled handle has metrics")
            .to_json();
        if let Some(path) = trace_path {
            if streams == *stream_counts.last().expect("non-empty counts") {
                let doc = chrome::render(&events);
                json::parse(&doc).expect("exported chrome trace must be valid JSON");
                std::fs::write(path, &doc).expect("write chrome trace");
                println!(
                    "      wrote chrome trace ({} events) to {path}",
                    events.len()
                );
            }
        }

        let baseline = (0..timing_reps)
            .map(|_| run_independent(&ctx, &specs, workers))
            .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
            .expect("at least one timing rep");
        assert_eq!(
            baseline.reschedules, shared.stats.drift_events,
            "independent managers must adopt the same reschedules"
        );

        let resched_per_s = shared.stats.reschedules_per_s();
        let baseline_resched_per_s = if baseline.wall_s > 0.0 {
            baseline.reschedules as f64 / baseline.wall_s
        } else {
            0.0
        };
        let speedup = if baseline_resched_per_s > 0.0 {
            resched_per_s / baseline_resched_per_s
        } else {
            0.0
        };
        if streams == 8 {
            speedup_at_8 = speedup;
        }
        if streams == 64 {
            speedup_at_64 = speedup;
            hit_split_at_64 = (
                isolated.stats.per_stream_hit_rate(),
                shared.stats.shared_hit_rate(),
            );
        }
        println!(
            "{streams:>4} streams: {:>9.0} inst/s  {:>7.0} resched/s  \
             coalesce x{:.2}  hit iso {:>5.1}% / shared {:>5.1}%  speedup x{:.2}{}",
            shared.stats.instances_per_s(),
            resched_per_s,
            shared.stats.coalescing_factor(),
            100.0 * isolated.stats.per_stream_hit_rate(),
            100.0 * shared.stats.shared_hit_rate(),
            speedup,
            lockstep_inst_per_s
                .map(|l| format!("  lockstep {l:.0} inst/s"))
                .unwrap_or_default()
        );
        rows.push(Row {
            streams,
            instances: shared.stats.instances,
            inst_per_s: shared.stats.instances_per_s(),
            resched_per_s,
            coalescing_factor: shared.stats.coalescing_factor(),
            per_stream_hit_rate: isolated.stats.per_stream_hit_rate(),
            shared_hit_rate: shared.stats.shared_hit_rate(),
            solver_calls_shared: shared.stats.solver_calls,
            solver_calls_independent: reference.stats.solver_calls,
            baseline_resched_per_s,
            speedup,
            lockstep_inst_per_s,
            stages,
            metrics_json,
        });
    }

    // Acceptance: cross-stream sharing must beat isolation where there are
    // streams to share across, and the engine must out-reschedule the
    // independent-manager architecture. (Wall-clock asserts are skipped in
    // smoke runs; the determinism asserts above always hold.)
    let (iso_rate, shared_rate) = hit_split_at_64;
    assert!(
        shared_rate > iso_rate,
        "shared cache hit rate ({shared_rate:.3}) must exceed the isolated \
         per-stream rate ({iso_rate:.3}) at 64 streams"
    );
    if !smoke {
        assert!(
            speedup_at_64 >= 2.0,
            "aggregate reschedule throughput must be >= 2x the independent \
             baseline at 64 streams, got x{speedup_at_64:.2}"
        );
        // The event engine solves on each stream's own warm workspace, so
        // small populations must no longer pay the lockstep engine's
        // cross-stream warm-start thrash.
        assert!(
            speedup_at_8 >= 1.0,
            "the event engine must at least match the independent baseline \
             at 8 streams, got x{speedup_at_8:.2}"
        );
    }
    // Scale rows: smoke stops at 10k streams (seconds-scale CI); the full
    // run records both the 10k and 100k points so the artifact shows how
    // latency percentiles and SLO violations move with population size.
    let scale_counts: &[usize] = if smoke { &[10_000] } else { &[10_000, 100_000] };
    let scale_rows: Vec<ScaleRow> = scale_counts
        .iter()
        .map(|&n| scale_run(&ctx, n, workers))
        .collect();
    let overload_rows = overload_sweep(&ctx, trace_len, smoke, workers);
    let portfolio_row = portfolio_run(&ctx, trace_len, workers, if smoke { 16 } else { 64 });
    assert!(
        overload_rows
            .iter()
            .any(|r| r.shed_requests > 0 || r.budget_exceeded > 0),
        "the overload sweep must actually exercise shedding or budgets"
    );

    println!("\ndeterminism: PASS (summaries identical across workers/shards/cache modes)");

    // ---- Hand-rolled JSON artifact. ----
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"mpeg/drift-pool{SEED_POOL}\",\n  \"trace_len\": {trace_len},\n  \
         \"workers\": {workers},\n  \"smoke\": {smoke},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"streams\": {}, \"instances\": {}, \"inst_per_s\": {:.1}, \
             \"lockstep_inst_per_s\": {}, \
             \"resched_per_s\": {:.1}, \"coalescing_factor\": {:.3}, \
             \"per_stream_hit_rate\": {:.4}, \"shared_hit_rate\": {:.4}, \
             \"solver_calls_shared\": {}, \"solver_calls_independent\": {}, \
             \"baseline_resched_per_s\": {:.1}, \"speedup_vs_independent\": {:.3}, \
             \"stages\": {}, \"metrics\": {}}}{}\n",
            r.streams,
            r.instances,
            r.inst_per_s,
            r.lockstep_inst_per_s
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "null".to_string()),
            r.resched_per_s,
            r.coalescing_factor,
            r.per_stream_hit_rate,
            r.shared_hit_rate,
            r.solver_calls_shared,
            r.solver_calls_independent,
            r.baseline_resched_per_s,
            r.speedup,
            stages_json(&r.stages),
            r.metrics_json,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    // Crossover: the smallest stream count where the event engine's
    // throughput meets or beats the lockstep engine's (null without
    // --compare-lockstep or when lockstep wins everywhere).
    let crossover = rows
        .iter()
        .find(|r| r.lockstep_inst_per_s.is_some_and(|l| r.inst_per_s >= l))
        .map(|r| r.streams.to_string())
        .unwrap_or_else(|| "null".to_string());
    json.push_str(&format!("  ],\n  \"crossover_streams\": {crossover},\n"));
    json.push_str("  \"scale\": [\n");
    for (i, scale) in scale_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"streams\": {}, \"instances\": {}, \"inst_per_s\": {:.1}, \
             \"arrival\": \"poisson\", \"arrival_rate\": {:.4}, \"slo\": {:.3}, \
             \"latency_p50\": {:.3}, \"latency_p99\": {:.3}, \"latency_max\": {:.3}, \
             \"slo_violation_rate\": {:.4}, \"max_queue_depth\": {}, \"events\": {}, \
             \"shared_hit_rate\": {:.4}, \"wall_s\": {:.2}, \
             \"per_stream_bytes\": {:.0}, \"mgr_size_bytes\": {}, \
             \"prev_inst_per_s\": {}, \"prev_wall_s\": {}}}{}\n",
            scale.streams,
            scale.instances,
            scale.inst_per_s,
            scale.arrival_rate,
            scale.slo,
            scale.latency_p50,
            scale.latency_p99,
            scale.latency_max,
            scale.slo_violation_rate,
            scale.max_queue_depth,
            scale.events,
            scale.shared_hit_rate,
            scale.wall_s,
            scale.per_stream_bytes,
            scale.mgr_size_bytes,
            scale
                .prev
                .map(|(p, _)| format!("{p:.1}"))
                .unwrap_or_else(|| "null".to_string()),
            scale
                .prev
                .map(|(_, w)| format!("{w:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == scale_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"overload\": [\n");
    for (i, r) in overload_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"burst_p_enter\": {:.3}, \"shed_requests\": {}, \
             \"shed_rate\": {:.4}, \"quarantines\": {}, \
             \"quarantined_ticks\": {}, \"budget_exceeded\": {}, \
             \"miss_rate\": {:.4}}}{}\n",
            r.p_enter,
            r.shed_requests,
            r.shed_rate,
            r.quarantines,
            r.quarantined_ticks,
            r.budget_exceeded,
            r.miss_rate,
            if i + 1 == overload_rows.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"portfolio\": {{\"streams\": {}, \"races\": {}, \"wins\": {{\"dls\": {}, \
         \"heft\": {}, \"lookahead\": {}, \"frame\": {}}}, \"total_energy\": {:.3}, \
         \"dls_total_energy\": {:.3}, \"inst_per_s\": {:.1}}},\n",
        portfolio_row.streams,
        portfolio_row.races,
        portfolio_row.wins[0],
        portfolio_row.wins[1],
        portfolio_row.wins[2],
        portfolio_row.wins[3],
        portfolio_row.total_energy,
        portfolio_row.dls_total_energy,
        portfolio_row.inst_per_s,
    ));
    json.push_str("  \"determinism\": \"pass\"\n}\n");
    let out = if smoke {
        std::fs::create_dir_all("target").expect("create target dir");
        "target/BENCH_serve_smoke.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(out, json).expect("write bench artifact");
    println!("wrote {out}");
}
