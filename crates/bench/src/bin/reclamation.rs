//! Runtime slack reclamation vs. the adaptive manager (extension).
//!
//! Three energy-management strategies over the same MPEG traces:
//!
//! 1. **online** — schedule once from profiled probabilities, locked speeds;
//! 2. **online + reclamation** — same schedule, but the dispatcher reclaims
//!    the slack freed by deactivated tasks at runtime;
//! 3. **adaptive** — the paper's window-based re-scheduling (T = 0.1);
//! 4. **adaptive + reclamation** — both mechanisms composed.
//!
//! Reclamation is reactive (per instance, no profiling); adaptation is
//! predictive (across instances). The table shows how much each recovers
//! and that they compose.

use ctg_bench::report::{f1, pct, Table};
use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_model::DecisionVector;
use ctg_sched::{AdaptiveScheduler, OnlineScheduler, SchedContext, Solution};
use ctg_sim::{simulate_instance, simulate_instance_reclaiming};
use ctg_workloads::traces;

const LEN: usize = 1200;
const MIN_SPEED: f64 = 0.05;

fn run_fixed(ctx: &SchedContext, sol: &Solution, test: &[DecisionVector], reclaim: bool) -> f64 {
    let mut total = 0.0;
    for v in test {
        let r = if reclaim {
            simulate_instance_reclaiming(ctx, sol, v, MIN_SPEED, true).expect("simulates")
        } else {
            simulate_instance(ctx, sol, v).expect("simulates")
        };
        assert!(r.deadline_met, "hard deadline violated");
        total += r.energy;
    }
    total / test.len() as f64
}

fn run_adaptive_mgr(
    ctx: &SchedContext,
    profiled: &ctg_model::BranchProbs,
    test: &[DecisionVector],
    reclaim: bool,
) -> f64 {
    let mut mgr = AdaptiveScheduler::new(ctx, profiled.clone(), 20, 0.1).expect("manager");
    let mut total = 0.0;
    for v in test {
        let r = if reclaim {
            simulate_instance_reclaiming(ctx, mgr.solution(), v, MIN_SPEED, true)
                .expect("simulates")
        } else {
            simulate_instance(ctx, mgr.solution(), v).expect("simulates")
        };
        assert!(r.deadline_met, "hard deadline violated");
        total += r.energy;
        mgr.observe(ctx, v).expect("observes");
    }
    total / test.len() as f64
}

fn main() {
    let ctx = prepare_mpeg(2.0);
    let mut table = Table::new([
        "Movie",
        "online",
        "+reclaim",
        "adaptive",
        "adaptive+reclaim",
        "best saving",
    ]);
    let mut sums = [0.0f64; 4];
    let movies = traces::movie_presets();
    let subset = &movies[..4];
    for movie in subset {
        let trace = traces::generate_trace(ctx.ctg(), &movie.profile, LEN);
        let (train, test) = trace.split_at(LEN / 2);
        let profiled = profile_trace(&ctx, train);
        let online = OnlineScheduler::new()
            .solve(&ctx, &profiled)
            .expect("solves");

        let e = [
            run_fixed(&ctx, &online, test, false),
            run_fixed(&ctx, &online, test, true),
            run_adaptive_mgr(&ctx, &profiled, test, false),
            run_adaptive_mgr(&ctx, &profiled, test, true),
        ];
        for (s, v) in sums.iter_mut().zip(&e) {
            *s += v;
        }
        let best = e[1..].iter().cloned().fold(f64::INFINITY, f64::min);
        table.row([
            movie.name.to_string(),
            f1(e[0]),
            f1(e[1]),
            f1(e[2]),
            f1(e[3]),
            pct(1.0 - best / e[0]),
        ]);
    }
    table.print("Slack reclamation vs adaptation on MPEG (avg energy per instance)");
    let n = subset.len() as f64;
    println!(
        "\naverages: online {:.2}, +reclaim {:.2}, adaptive {:.2}, adaptive+reclaim {:.2}",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n
    );
    println!(
        "reclamation recovers slack freed by skipped tasks within an instance;\n\
         adaptation re-optimizes allocation across instances; composed they save most."
    );
}
