//! DVFS switching-overhead ablation (extension).
//!
//! The paper states "we do not consider switching overhead for DVFS"; this
//! bench quantifies what that assumption hides: per-transition time/energy
//! charges are swept on the MPEG workload and their impact on average
//! energy and deadline misses is reported. Transition times are expressed
//! as a fraction of the average task WCET.

use ctg_bench::report::{pct, Table};
use ctg_bench::setup::{prepare_mpeg, profile_trace};
use ctg_model::BranchProbs;
use ctg_sched::OnlineScheduler;
use ctg_sim::{simulate_instance_with_overhead, DvfsOverhead};
use ctg_workloads::traces;

const LEN: usize = 500;

fn main() {
    let ctx = prepare_mpeg(2.0);
    let movie = &traces::movie_presets()[1];
    let trace = traces::generate_trace(ctx.ctg(), &movie.profile, LEN);
    let profiled = profile_trace(&ctx, &trace);
    let online = OnlineScheduler::new()
        .solve(&ctx, &profiled)
        .expect("online solves");

    // Reference scales.
    let avg_wcet: f64 = {
        let profile = ctx.platform().profile();
        let n = ctx.ctg().num_tasks();
        (0..n).map(|t| profile.wcet_avg(t)).sum::<f64>() / n as f64
    };
    let avg_energy: f64 = {
        let probs = BranchProbs::uniform(ctx.ctg());
        let e = ctg_sched::expected_energy(
            &ctx,
            &probs,
            &online.schedule,
            &ctg_sched::SpeedAssignment::nominal(ctx.ctg().num_tasks()),
        );
        e / ctx.ctg().num_tasks() as f64
    };

    let mut table = Table::new([
        "switch time (×wcet)",
        "switch energy (×task)",
        "avg energy",
        "Δ energy",
        "deadline misses",
    ]);
    let mut base = None;
    for (tf, ef) in [
        (0.0, 0.0),
        (0.01, 0.01),
        (0.05, 0.05),
        (0.1, 0.1),
        (0.25, 0.25),
        (0.5, 0.5),
    ] {
        let oh = DvfsOverhead {
            switch_time: tf * avg_wcet,
            switch_energy: ef * avg_energy,
        };
        let mut total = 0.0;
        let mut misses = 0usize;
        for v in &trace {
            let r = simulate_instance_with_overhead(&ctx, &online, v, oh).expect("simulates");
            total += r.energy;
            misses += usize::from(!r.deadline_met);
        }
        let avg = total / trace.len() as f64;
        let b = *base.get_or_insert(avg);
        table.row([
            format!("{tf}"),
            format!("{ef}"),
            format!("{avg:.2}"),
            pct(avg / b - 1.0),
            misses.to_string(),
        ]);
    }
    table.print("DVFS switching overhead on MPEG (online schedule, 2x deadline)");
    println!(
        "\nenergy overhead grows linearly with the per-switch cost. The misses are the\n\
         sharper finding: the stretching heuristic fills critical paths exactly to the\n\
         deadline, so *any* non-zero transition time breaks the instances whose path\n\
         was saturated — the paper's no-overhead assumption is load-bearing, and a\n\
         deployment would need to reserve a transition budget when distributing slack."
    );
}
