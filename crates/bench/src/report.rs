//! Minimal fixed-width table rendering for experiment output.

/// A printable table with a title, headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self, title: &str) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {title} ==\n"));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$} ", c, width = widths[i]));
                line.push_str("| ");
            }
            line.trim_end().to_string()
        };
        let sep: String = {
            let mut s = String::from("|");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('|');
            }
            s
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self, title: &str) {
        print!("{}", self.render(title));
    }
}

/// Formats a float with one decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with three decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with one decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["CTG", "Energy"]);
        t.row(["1", "100"]);
        t.row(["2", "95.5"]);
        let s = t.render("demo");
        assert!(s.contains("== demo =="));
        assert!(s.contains("| CTG |"));
        assert!(s.contains("95.5"));
        // Separator present.
        assert!(s.lines().any(|l| l.starts_with("|-")));
    }

    #[test]
    fn rows_padded_to_header_width() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let s = t.render("x");
        assert!(s.contains("only-one"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.215), "21.5%");
    }
}
