//! Shared experiment setup: deadline calibration, biased profiles and
//! prepared workloads.

use ctg_model::{BranchProbs, Ctg, DecisionVector};
use ctg_sched::{dls_schedule, SchedContext};
use ctg_workloads::{cruise, mpeg};
use mpsoc_platform::Platform;
use tgff_gen::TgffConfig;

/// Builds a context whose deadline is `factor ×` the nominal DLS makespan
/// under `probs` — the calibration the paper uses (e.g. "the deadline we
/// used was double of the optimum schedule length").
///
/// # Panics
///
/// Panics when the graph cannot be scheduled on the platform.
pub fn context_with_scaled_deadline(
    ctg: Ctg,
    platform: Platform,
    probs: &BranchProbs,
    factor: f64,
) -> SchedContext {
    let ctx = SchedContext::new(ctg, platform).expect("graph and platform agree");
    let sched = dls_schedule(&ctx, probs).expect("schedulable workload");
    let deadline = sched.makespan() * factor;
    let ctg = ctx.ctg().with_deadline(deadline);
    SchedContext::new(ctg, ctx.platform().clone()).expect("rebuilt context")
}

/// A generated random test case ready for experiments.
pub struct PreparedCase {
    /// Scheduling context with calibrated deadline.
    pub ctx: SchedContext,
    /// The generator's "true" average branch probabilities.
    pub probs: BranchProbs,
    /// Short label `a/b/c` as used by the paper's tables.
    pub label: String,
}

/// Generates and calibrates one TGFF case (deadline = `factor ×` makespan).
pub fn prepare_case(cfg: &TgffConfig, num_pes: usize, factor: f64) -> PreparedCase {
    let generated = cfg.generate();
    let platform = cfg.generate_platform(&generated.ctg, num_pes);
    let label = format!("{}/{}/{}", cfg.num_tasks, num_pes, cfg.num_branches);
    let ctx = context_with_scaled_deadline(generated.ctg, platform, &generated.probs, factor);
    PreparedCase {
        ctx,
        probs: generated.probs,
        label,
    }
}

/// Prepares the MPEG decoder on its 3-PE platform.
pub fn prepare_mpeg(factor: f64) -> SchedContext {
    let ctg = mpeg::mpeg_ctg();
    let platform = mpeg::mpeg_platform(&ctg);
    let probs = BranchProbs::uniform(&ctg);
    context_with_scaled_deadline(ctg, platform, &probs, factor)
}

/// Prepares the cruise controller on its 5-PE platform
/// (paper: deadline = 2× the optimal schedule length).
pub fn prepare_cruise(factor: f64) -> SchedContext {
    let ctg = cruise::cruise_ctg();
    let platform = cruise::cruise_platform(&ctg);
    let probs = BranchProbs::uniform(&ctg);
    context_with_scaled_deadline(ctg, platform, &probs, factor)
}

/// Mapping-free energy estimate of one scenario: the sum of the average
/// nominal energies of its activated tasks. Used to rank minterms by energy
/// for the biased-profile experiments of Tables 4 and 5.
fn scenario_energy(ctx: &SchedContext, scenario: &ctg_model::Scenario) -> f64 {
    let profile = ctx.platform().profile();
    let n = ctx.ctg().num_tasks();
    (0..n)
        .filter(|&t| scenario.active_tasks()[t])
        .map(|t| {
            let pes = ctx.platform().num_pes();
            (0..pes)
                .map(|p| profile.energy(t, mpsoc_platform::PeId::new(p)))
                .sum::<f64>()
                / pes as f64
        })
        .sum()
}

/// Returns, per fork node, the alternative leading toward the lowest-energy
/// (`lowest = true`) or highest-energy minterm. Forks undecided in the
/// extreme scenario keep alternative 0.
pub fn extreme_minterm_alts(ctx: &SchedContext, lowest: bool) -> Vec<u8> {
    let scenarios = ctx.scenarios().scenarios();
    let pick = scenarios
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let (ea, eb) = (scenario_energy(ctx, a), scenario_energy(ctx, b));
            let ord = ea.partial_cmp(&eb).expect("finite energies");
            if lowest {
                ord
            } else {
                ord.reverse()
            }
        })
        .map(|(i, _)| i)
        .expect("at least one scenario");
    let cube = scenarios[pick].cube();
    ctx.ctg()
        .branch_nodes()
        .iter()
        .map(|&b| cube.alt_of(b).unwrap_or(0))
        .collect()
}

/// Empirical per-fork probabilities of a trace, counting executed forks only
/// (re-exported convenience wrapper).
pub fn profile_trace(ctx: &SchedContext, trace: &[DecisionVector]) -> BranchProbs {
    ctg_workloads::traces::empirical_probs(ctx.ctg(), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgff_gen::Category;

    #[test]
    fn deadline_scaling_is_applied() {
        let cfg = TgffConfig::new(11, 20, 2, Category::ForkJoin);
        let case = prepare_case(&cfg, 3, 2.0);
        let sched = dls_schedule(&case.ctx, &case.probs).unwrap();
        let d = case.ctx.ctg().deadline();
        // Deadline ≈ 2× the makespan under the same probabilities (the
        // calibration run uses the identical schedule).
        assert!((d - 2.0 * sched.makespan()).abs() / d < 1e-9);
        assert_eq!(case.label, "20/3/2");
    }

    #[test]
    fn extreme_minterms_differ_when_arms_are_asymmetric() {
        let cfg = TgffConfig::new(12, 25, 3, Category::ForkJoin);
        let case = prepare_case(&cfg, 3, 2.0);
        let low = extreme_minterm_alts(&case.ctx, true);
        let high = extreme_minterm_alts(&case.ctx, false);
        assert_eq!(low.len(), case.ctx.ctg().num_branches());
        // Low- and high-energy minterms disagree on at least one fork for a
        // graph with meaningfully different arms.
        assert_ne!(low, high);
    }

    #[test]
    fn mpeg_and_cruise_prepare() {
        let mpeg_ctx = prepare_mpeg(2.0);
        assert_eq!(mpeg_ctx.ctg().num_tasks(), 40);
        let cruise_ctx = prepare_cruise(2.0);
        assert_eq!(cruise_ctx.ctg().num_tasks(), 32);
        assert!(cruise_ctx.ctg().deadline() > 0.0);
    }
}
