//! Runtime of the stretching stage in isolation: the paper's low-complexity
//! heuristic (Figure 2) vs. the NLP-style optimizer, on a fixed committed
//! schedule; plus the adaptive manager's per-instance observation cost.
//!
//! Plain timing harness (no external bench framework): each case is warmed
//! up once, then timed over a fixed iteration budget; we report the mean
//! per-iteration wall time.

use ctg_bench::setup::prepare_mpeg;
use ctg_model::DecisionVector;
use ctg_sched::baseline::{nlp_stretch, NlpConfig};
use ctg_sched::{dls_schedule, stretch_schedule, AdaptiveScheduler, StretchConfig};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, iters: u32, mut f: F) {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{label:<32} {:>12.3} us/iter  ({iters} iters)", per * 1e6);
}

fn main() {
    let ctx = prepare_mpeg(2.0);
    let probs = ctg_model::BranchProbs::uniform(ctx.ctg());
    let schedule = dls_schedule(&ctx, &probs).expect("schedulable");

    time("stretch/heuristic_mpeg", 100, || {
        black_box(
            stretch_schedule(&ctx, &probs, &schedule, &StretchConfig::default())
                .expect("stretches"),
        );
    });

    time("stretch/nlp_mpeg", 10, || {
        black_box(nlp_stretch(&ctx, &probs, &schedule, &NlpConfig::default()).expect("optimizes"));
    });

    // Threshold 1.0: pure window/profiling cost, no re-scheduling.
    let mut mgr = AdaptiveScheduler::new(&ctx, probs, 20, 1.0).expect("manager builds");
    let v = DecisionVector::new(vec![0; ctx.ctg().num_branches()]);
    time("adaptive/observe_no_call", 1000, || {
        black_box(mgr.observe(&ctx, &v).expect("observes"));
    });
}
