//! Runtime of the stretching stage in isolation: the paper's low-complexity
//! heuristic (Figure 2) vs. the NLP-style optimizer, on a fixed committed
//! schedule; plus the adaptive manager's per-instance observation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use ctg_bench::setup::prepare_mpeg;
use ctg_model::DecisionVector;
use ctg_sched::baseline::{nlp_stretch, NlpConfig};
use ctg_sched::{dls_schedule, stretch_schedule, AdaptiveScheduler, StretchConfig};
use std::hint::black_box;

fn bench_stretch(c: &mut Criterion) {
    let ctx = prepare_mpeg(2.0);
    let probs = ctg_model::BranchProbs::uniform(ctx.ctg());
    let schedule = dls_schedule(&ctx, &probs).expect("schedulable");

    c.bench_function("stretch/heuristic_mpeg", |b| {
        b.iter(|| {
            black_box(
                stretch_schedule(&ctx, &probs, &schedule, &StretchConfig::default())
                    .expect("stretches"),
            )
        })
    });

    let mut group = c.benchmark_group("stretch_nlp");
    group.sample_size(10);
    group.bench_function("nlp_mpeg", |b| {
        b.iter(|| {
            black_box(
                nlp_stretch(&ctx, &probs, &schedule, &NlpConfig::default())
                    .expect("optimizes"),
            )
        })
    });
    group.finish();
}

fn bench_observe(c: &mut Criterion) {
    let ctx = prepare_mpeg(2.0);
    let probs = ctg_model::BranchProbs::uniform(ctx.ctg());
    // Threshold 1.0: pure window/profiling cost, no re-scheduling.
    let mut mgr = AdaptiveScheduler::new(&ctx, probs, 20, 1.0).expect("manager builds");
    let v = DecisionVector::new(vec![0; ctx.ctg().num_branches()]);
    c.bench_function("adaptive/observe_no_call", |b| {
        b.iter(|| black_box(mgr.observe(&ctx, &v).expect("observes")))
    });
}

criterion_group!(benches, bench_stretch, bench_observe);
criterion_main!(benches);
