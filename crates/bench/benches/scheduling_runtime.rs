//! Runtime of the complete online algorithm (DLS + heuristic stretching)
//! vs. reference algorithm 2 (DLS + NLP stretching) — the paper's
//! "0.6 ms vs. 70 s / ~120 000×" comparison, on the Table-1 graphs and the
//! MPEG decoder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctg_bench::setup::{prepare_case, prepare_mpeg};
use ctg_sched::baseline::{reference2, NlpConfig};
use ctg_sched::OnlineScheduler;
use std::hint::black_box;

fn bench_online_vs_ref2(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    group.sample_size(10);
    for (i, (cfg, pes)) in tgff_gen::table1_cases().iter().enumerate().take(2) {
        let case = prepare_case(cfg, *pes, 1.6);
        let scheduler = OnlineScheduler::new();
        group.bench_with_input(BenchmarkId::new("online", i + 1), &case, |b, case| {
            b.iter(|| {
                black_box(
                    scheduler
                        .solve(&case.ctx, &case.probs)
                        .expect("online solves"),
                )
            })
        });
        let nlp = NlpConfig::default();
        group.bench_with_input(BenchmarkId::new("ref2_nlp", i + 1), &case, |b, case| {
            b.iter(|| {
                black_box(reference2(&case.ctx, &case.probs, &nlp).expect("ref2 solves"))
            })
        });
    }
    group.finish();
}

fn bench_mpeg_solve(c: &mut Criterion) {
    let ctx = prepare_mpeg(2.0);
    let probs = ctg_model::BranchProbs::uniform(ctx.ctg());
    let scheduler = OnlineScheduler::new();
    c.bench_function("solve/online_mpeg_40tasks", |b| {
        b.iter(|| black_box(scheduler.solve(&ctx, &probs).expect("solves")))
    });
}

criterion_group!(benches, bench_online_vs_ref2, bench_mpeg_solve);
criterion_main!(benches);
