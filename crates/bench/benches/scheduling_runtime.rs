//! Runtime of the complete online algorithm (DLS + heuristic stretching)
//! vs. reference algorithm 2 (DLS + NLP stretching) — the paper's
//! "0.6 ms vs. 70 s / ~120 000×" comparison, on the Table-1 graphs and the
//! MPEG decoder.
//!
//! Plain timing harness (no external bench framework): each case is warmed
//! up once, then timed over a fixed iteration budget; we report the mean
//! per-iteration wall time.

use ctg_bench::setup::{prepare_case, prepare_mpeg};
use ctg_sched::baseline::{reference2, NlpConfig};
use ctg_sched::OnlineScheduler;
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, iters: u32, mut f: F) {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{label:<32} {:>12.3} us/iter  ({iters} iters)", per * 1e6);
}

fn main() {
    for (i, (cfg, pes)) in tgff_gen::table1_cases().iter().enumerate().take(2) {
        let case = prepare_case(cfg, *pes, 1.6);
        let scheduler = OnlineScheduler::new();
        time(&format!("solve/online/{}", i + 1), 50, || {
            black_box(
                scheduler
                    .solve(&case.ctx, &case.probs)
                    .expect("online solves"),
            );
        });
        let nlp = NlpConfig::default();
        time(&format!("solve/ref2_nlp/{}", i + 1), 10, || {
            black_box(reference2(&case.ctx, &case.probs, &nlp).expect("ref2 solves"));
        });
    }

    let ctx = prepare_mpeg(2.0);
    let probs = ctg_model::BranchProbs::uniform(ctx.ctg());
    let scheduler = OnlineScheduler::new();
    time("solve/online_mpeg_40tasks", 50, || {
        black_box(scheduler.solve(&ctx, &probs).expect("solves"));
    });
}
