//! Deterministic arrival-process samplers for open-loop serving.
//!
//! The event-driven serving engine gives every stream an independent
//! inter-arrival process. These samplers are the vendored, reproducible
//! building blocks: each stream's gap sequence is a pure function of
//! `(seed, stream_id)` — and therefore the `index`-th gap is a pure
//! function of `(seed, stream_id, index)` — so arrival times can never
//! depend on worker counts, sharding or wall-clock interleaving. The exact
//! sequences are part of this crate's contract (experiments pin them), and
//! the `golden_*` tests below guard the first few values of each process
//! so a refactor cannot silently shift every arrival in every benchmark.
//!
//! Two processes are provided:
//!
//! * [`PoissonGaps`] — exponential inter-arrival gaps at a fixed rate
//!   (inverse-CDF over [`Rng64`] draws): the classic open-loop Poisson
//!   arrival stream.
//! * [`BurstyGaps`] — a Gilbert–Elliott-modulated Poisson process: a
//!   two-state Markov chain (calm/burst) advanced one step per gap, with
//!   the burst state multiplying the arrival rate. This reproduces the
//!   correlated request storms the serve engine's overload machinery is
//!   designed for, with the same `(p_enter, p_exit)` parameterisation as
//!   the fault injector's `BurstModel`.
//!
//! Every gap consumes a fixed number of generator draws (one for
//! [`PoissonGaps`], two for [`BurstyGaps`]), which is what makes per-index
//! replay ([`PoissonGaps::gap_at`], [`BurstyGaps::gap_at`]) exact.

use crate::{Rng64, SplitMix64};

/// Derives the per-stream generator: decorrelated across both the base
/// seed and the stream id, so "same movie, different session" streams see
/// independent arrival processes.
fn stream_rng(seed: u64, stream_id: u64) -> Rng64 {
    Rng64::seed_from_u64(SplitMix64::mix(seed, stream_id))
}

/// Draws one exponential gap with the given rate from `rng`.
///
/// Inverse CDF: `-ln(1 - u) / rate` with `u ∈ [0, 1)`, so the argument of
/// `ln` lies in `(0, 1]` and the gap is always finite and non-negative.
fn exp_gap(rng: &mut Rng64, rate: f64) -> f64 {
    -(1.0 - rng.next_f64()).ln() / rate
}

/// Exponential (Poisson-process) inter-arrival gaps for one stream.
///
/// The sequence of gaps is a pure function of `(seed, stream_id)`; the
/// `i`-th gap is a pure function of `(seed, stream_id, i)` (see
/// [`PoissonGaps::gap_at`]).
#[derive(Debug, Clone)]
pub struct PoissonGaps {
    rng: Rng64,
    rate: f64,
}

impl PoissonGaps {
    /// A sampler for stream `stream_id` with mean arrival rate `rate`
    /// (arrivals per simulated time unit; mean gap `1 / rate`).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn new(seed: u64, stream_id: u64, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be finite and positive"
        );
        PoissonGaps {
            rng: stream_rng(seed, stream_id),
            rate,
        }
    }

    /// The next inter-arrival gap.
    pub fn next_gap(&mut self) -> f64 {
        exp_gap(&mut self.rng, self.rate)
    }

    /// The `index`-th gap, replayed from scratch — a pure function of
    /// `(seed, stream_id, index)`. O(`index`); the engine iterates with
    /// [`PoissonGaps::next_gap`], tests use this to pin purity.
    pub fn gap_at(seed: u64, stream_id: u64, rate: f64, index: usize) -> f64 {
        let mut s = PoissonGaps::new(seed, stream_id, rate);
        for _ in 0..index {
            s.next_gap();
        }
        s.next_gap()
    }
}

/// Gilbert–Elliott-modulated Poisson inter-arrival gaps for one stream.
///
/// A two-state chain starts calm; before each gap it enters the burst
/// state with probability `p_enter` (or leaves it with probability
/// `p_exit`), and the gap is exponential at `rate * burst_mult` while
/// bursting, `rate` otherwise. Each gap consumes exactly two generator
/// draws (state flip + exponential), so the sequence — and the `i`-th gap
/// — is a pure function of `(seed, stream_id)` (resp. `(seed, stream_id,
/// i)`).
#[derive(Debug, Clone)]
pub struct BurstyGaps {
    rng: Rng64,
    rate: f64,
    burst_mult: f64,
    p_enter: f64,
    p_exit: f64,
    in_burst: bool,
}

impl BurstyGaps {
    /// A sampler for stream `stream_id`: calm rate `rate`, burst rate
    /// `rate * burst_mult`, per-gap transition probabilities `p_enter` /
    /// `p_exit`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` and `burst_mult` are finite and positive and
    /// the transition probabilities lie in `[0, 1]`.
    pub fn new(
        seed: u64,
        stream_id: u64,
        rate: f64,
        burst_mult: f64,
        p_enter: f64,
        p_exit: f64,
    ) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be finite and positive"
        );
        assert!(
            burst_mult.is_finite() && burst_mult > 0.0,
            "burst multiplier must be finite and positive"
        );
        assert!(
            (0.0..=1.0).contains(&p_enter) && (0.0..=1.0).contains(&p_exit),
            "transition probabilities must lie in [0, 1]"
        );
        BurstyGaps {
            rng: stream_rng(seed, stream_id),
            rate,
            burst_mult,
            p_enter,
            p_exit,
            in_burst: false,
        }
    }

    /// Whether the chain is currently in the burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Advances the chain one step and draws the next gap.
    pub fn next_gap(&mut self) -> f64 {
        let flip_p = if self.in_burst {
            self.p_exit
        } else {
            self.p_enter
        };
        if self.rng.gen_bool(flip_p) {
            self.in_burst = !self.in_burst;
        }
        let rate = if self.in_burst {
            self.rate * self.burst_mult
        } else {
            self.rate
        };
        exp_gap(&mut self.rng, rate)
    }

    /// The `index`-th gap, replayed from scratch — a pure function of
    /// `(seed, stream_id, index)` for fixed process parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn gap_at(
        seed: u64,
        stream_id: u64,
        rate: f64,
        burst_mult: f64,
        p_enter: f64,
        p_exit: f64,
        index: usize,
    ) -> f64 {
        let mut s = BurstyGaps::new(seed, stream_id, rate, burst_mult, p_enter, p_exit);
        for _ in 0..index {
            s.next_gap();
        }
        s.next_gap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0x0A17_1BA5;

    #[test]
    fn poisson_gaps_are_pure_per_index() {
        let mut iter = PoissonGaps::new(SEED, 3, 0.5);
        for i in 0..16 {
            let sequential = iter.next_gap();
            let replayed = PoissonGaps::gap_at(SEED, 3, 0.5, i);
            assert_eq!(
                sequential.to_bits(),
                replayed.to_bits(),
                "gap {i} must be a pure function of (seed, stream, index)"
            );
        }
    }

    #[test]
    fn bursty_gaps_are_pure_per_index() {
        let mut iter = BurstyGaps::new(SEED, 7, 1.0, 8.0, 0.2, 0.3);
        for i in 0..16 {
            let sequential = iter.next_gap();
            let replayed = BurstyGaps::gap_at(SEED, 7, 1.0, 8.0, 0.2, 0.3, i);
            assert_eq!(
                sequential.to_bits(),
                replayed.to_bits(),
                "bursty gap {i} must be a pure function of (seed, stream, index)"
            );
        }
    }

    #[test]
    fn streams_and_seeds_decorrelate() {
        let a = PoissonGaps::gap_at(SEED, 0, 1.0, 0);
        let b = PoissonGaps::gap_at(SEED, 1, 1.0, 0);
        let c = PoissonGaps::gap_at(SEED + 1, 0, 1.0, 0);
        assert_ne!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn gaps_are_finite_positive_and_mean_tracks_rate() {
        let mut p = PoissonGaps::new(SEED, 11, 2.0);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let g = p.next_gap();
            assert!(g.is_finite() && g >= 0.0, "gap {g}");
            sum += g;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean gap {mean} at rate 2.0");
    }

    #[test]
    fn bursty_bursts_shorten_gaps() {
        // With p_enter = 1 the chain bursts immediately and stays through
        // p_exit = 0: every gap runs at 10x the calm rate.
        let mut always = BurstyGaps::new(SEED, 1, 1.0, 10.0, 1.0, 0.0);
        assert!(!always.in_burst());
        let mut burst_sum = 0.0;
        for _ in 0..10_000 {
            burst_sum += always.next_gap();
        }
        assert!(always.in_burst());
        let mut never = BurstyGaps::new(SEED, 1, 1.0, 10.0, 0.0, 0.0);
        let mut calm_sum = 0.0;
        for _ in 0..10_000 {
            calm_sum += never.next_gap();
        }
        assert!(
            burst_sum * 5.0 < calm_sum,
            "burst gaps must be ~10x shorter: {burst_sum} vs {calm_sum}"
        );
    }

    /// Golden pins: the first gaps of each process for a fixed seed. If a
    /// refactor changes these bits, every open-loop benchmark and the
    /// serve-engine determinism matrix silently shift — fail loudly here
    /// instead.
    #[test]
    fn golden_sequences_are_pinned() {
        let poisson: Vec<u64> = (0..4)
            .map(|i| PoissonGaps::gap_at(0xDEC0DE, 5, 0.5, i).to_bits())
            .collect();
        let bursty: Vec<u64> = (0..4)
            .map(|i| BurstyGaps::gap_at(0xDEC0DE, 5, 1.0, 8.0, 0.1, 0.25, i).to_bits())
            .collect();
        assert_eq!(
            poisson, GOLDEN_POISSON,
            "poisson golden sequence shifted: {poisson:#018X?}"
        );
        assert_eq!(
            bursty, GOLDEN_BURSTY,
            "bursty golden sequence shifted: {bursty:#018X?}"
        );
    }

    const GOLDEN_POISSON: [u64; 4] = [
        0x401B933FF8E804AF,
        0x400FAB83ED850995,
        0x40080934669F5BDB,
        0x3FFB7A7642FF8636,
    ];
    const GOLDEN_BURSTY: [u64; 4] = [
        0x3FFFAB83ED850995,
        0x3FEB7A7642FF8636,
        0x3FE2DBCD9F8D7AEA,
        0x4007562575591F2E,
    ];
}
