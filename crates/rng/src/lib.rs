//! Tiny, self-contained, deterministic pseudo-random number generation.
//!
//! The workspace must build and test with **no network access**, so it
//! cannot depend on the `rand` crate. This crate vendors the two small,
//! well-studied generators the simulation stack needs:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Used to expand a
//!   single `u64` seed into the state of the main generator (and useful on
//!   its own for hashing-style seed derivation, e.g. per-instance fault
//!   streams).
//! * [`Rng64`] — xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
//!   Fast, passes BigCrush, and more than adequate for workload generation,
//!   Monte-Carlo estimation and fault injection.
//!
//! The API mirrors the subset of `rand` the workspace used —
//! [`Rng64::seed_from_u64`], [`Rng64::gen_range`] over common range types
//! and [`Rng64::gen_bool`] — so call sites read identically. Sequences are
//! stable: the exact outputs for a given seed are part of this crate's
//! contract (experiments and tests rely on reproducibility), guarded by the
//! `reference_sequences` test below.
//!
//! # Example
//!
//! ```
//! use ctg_rng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(42);
//! let p: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&p));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! let again = Rng64::seed_from_u64(42).gen_range(0.0..1.0);
//! assert_eq!(p, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;

pub use arrival::{BurstyGaps, PoissonGaps};

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny 64-bit generator/mixer.
///
/// Every call advances the state by the golden-ratio increment and returns a
/// bijectively mixed output. Primarily used to seed [`Rng64`] and to derive
/// independent sub-seeds from a base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-shot mix: derives a decorrelated sub-seed from `seed` and a
    /// `stream` discriminator. Handy for giving each instance / PE / task an
    /// independent deterministic stream.
    pub fn mix(seed: u64, stream: u64) -> u64 {
        let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        sm.next_u64()
    }
}

/// xoshiro256++ — the workspace's general-purpose deterministic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng64 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (see [`SampleRange`] for supported
    /// types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` via Lemire-style widening multiply
    /// (unbiased enough for simulation purposes; deterministic either way).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Ranges [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + (self.end - self.start) * rng.next_f64();
        // Guard against FP rounding landing exactly on `end`.
        if x >= self.end {
            self.start.max(f64::from_bits(self.end.to_bits() - 1))
        } else {
            x
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + rng.bounded_u64((end - start) as u64 + 1) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng64) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequences() {
        // Pin the output streams: experiment reproducibility depends on
        // these never changing.
        let mut sm = SplitMix64::new(1234567);
        let sm_ref: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        let advanced = 1234567u64.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(3));
        assert_eq!(sm, SplitMix64 { state: advanced });
        let mut sm2 = SplitMix64::new(1234567);
        let again: Vec<u64> = (0..3).map(|_| sm2.next_u64()).collect();
        assert_eq!(sm_ref, again);

        let mut a = Rng64::seed_from_u64(0);
        let mut b = Rng64::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(1);
        assert_ne!(Rng64::seed_from_u64(0).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&x));
            let k = rng.gen_range(3..17usize);
            assert!((3..17).contains(&k));
            let j = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&j));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
        assert!(!Rng64::seed_from_u64(1).gen_bool(0.0));
        assert!(Rng64::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    fn mix_decorrelates_streams() {
        let a = SplitMix64::mix(42, 0);
        let b = SplitMix64::mix(42, 1);
        let c = SplitMix64::mix(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, SplitMix64::mix(42, 0));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_500..11_500).contains(&b), "bucket {b}");
        }
    }
}
