#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the full test suite.
# The workspace has no external dependencies, so everything below succeeds
# without network access.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> parallel determinism matrix (2 workers forced)"
CTG_WORKERS=2 cargo test -q --offline --test parallel_determinism

echo "==> throughput smoke (2 workers)"
cargo build -q --release --offline -p ctg-bench --bin throughput
CTG_WORKERS=2 ./target/release/throughput --smoke

echo "==> warm-start solver equivalence"
cargo test -q --offline --test solver_equivalence

echo "==> intra-solve determinism (2 intra-solve workers forced)"
CTG_INTRA_SOLVE=2 cargo test -q --offline --test solver_equivalence

echo "==> solver bench smoke (asserts warm == cold bit-for-bit; warm p99 must"
echo "    stay within 2x of the committed BASELINE_solver.json snapshot)"
cargo build -q --release --offline -p ctg-bench --bin solver
./target/release/solver --smoke --check-baseline BASELINE_solver.json
test -s target/BENCH_solver_smoke.json

echo "==> serving-engine determinism matrix (2 workers forced)"
CTG_WORKERS=2 cargo test -q --offline --test serve_determinism

echo "==> telemetry equivalence matrix (sink off / no-op / buffered)"
cargo test -q --offline --test obs_equivalence
CTG_WORKERS=2 cargo test -q --offline --test obs_equivalence

echo "==> clippy over the obs crate (deny warnings)"
cargo clippy -p ctg-obs --all-targets --offline -- -D warnings

echo "==> overload-resilience matrix (dormant-knob equivalence + shed/quarantine"
echo "    determinism across workers, shards, cache modes; budget-off == baseline)"
cargo test -q --offline --test serve_overload
CTG_WORKERS=2 cargo test -q --offline --test serve_overload

echo "==> event-engine determinism matrix (workers x streams x arrivals x caches;"
echo "    closed-loop == lockstep bit-for-bit)"
cargo test -q --offline --test serve_events
CTG_WORKERS=2 cargo test -q --offline --test serve_events

echo "==> serve bench smoke (asserts summaries invariant across engine configs and"
echo "    engines via --compare-lockstep, runs the 10k-stream open-loop scale row,"
echo "    writes + validates a telemetry-on chrome trace)"
cargo build -q --release --offline -p ctg-bench --bin serve
CTG_WORKERS=2 ./target/release/serve --smoke --compare-lockstep --trace target/ci_serve_trace.json
test -s target/ci_serve_trace.json
test -s target/BENCH_serve_smoke.json

echo "==> campaign determinism matrix (worker invariance + kill/resume round-trip)"
cargo test -q --offline --test campaign_determinism
CTG_WORKERS=2 cargo test -q --offline --test campaign_determinism

echo "==> campaign bench smoke (8-cell grid at 2 workers: shared-artifact compile,"
echo "    JSONL cell stream, truncate-mid-line kill/resume drill asserting the"
echo "    resumed roll-up is bit-identical; JSONL validated by the strict parser)"
cargo build -q --release --offline -p ctg-bench --bin campaign
CTG_CAMPAIGN_WORKERS=2 ./target/release/campaign --smoke
test -s target/campaign_cells_smoke.jsonl
test -s target/BENCH_campaign_smoke.json

echo "==> scheduler portfolio matrix (trait pin bit-for-bit, dormant knob, race"
echo "    determinism across CTG_WORKERS x CTG_INTRA_SOLVE)"
cargo test -q --offline --test scheduler_portfolio
CTG_WORKERS=2 CTG_INTRA_SOLVE=2 cargo test -q --offline --test scheduler_portfolio

echo "==> portfolio bench smoke (serve bench portfolio row: expected-energy"
echo "    no-regression gate vs DLS-only + reshard determinism, asserted in-bin;"
echo "    table1 asserts portfolio <= online on every row)"
cargo build -q --release --offline -p ctg-bench --bin table1
./target/release/table1 > /dev/null

echo "==> CI OK"
