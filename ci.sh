#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the full test suite.
# The workspace has no external dependencies, so everything below succeeds
# without network access.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> CI OK"
